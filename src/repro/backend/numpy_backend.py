"""The numpy reference backend: the library's original hot-path math.

Every kernel keeps the formulation the solver shipped with — dense
broadcast BR blocks, gathered CSR pair batches, the Riesz multiplier
and the 4th-order stencils of :mod:`repro.backend.stencils`.  It is
the parity baseline for every other engine and the default when no
backend is selected.  (The surrounding call sites did move — e.g. the
TimeIntegrator now applies fused stage updates — so whole-solver
trajectories may differ from the pre-backend code at the 1e-15 level
even under this backend.)
"""

from __future__ import annotations

import numpy as np

from repro.backend import stencils
from repro.backend.base import ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """Reference implementation: straightforward vectorized numpy."""

    name = "numpy"

    def capabilities(self) -> frozenset[str]:
        return frozenset({"host", "reference", "vectorized"})

    # -- Birkhoff-Rott ----------------------------------------------------

    @staticmethod
    def _accumulate(
        out: np.ndarray,
        targets: np.ndarray,
        sources: np.ndarray,
        omega: np.ndarray,
        eps2: float,
        prefactor: float,
    ) -> None:
        """out[i] += prefactor * Σ_j ω_j × (t_i − s_j) / (r² + ε²)^{3/2}.

        Dense block evaluation; caller controls block sizes.
        """
        diff = targets[:, None, :] - sources[None, :, :]          # (nt, ns, 3)
        r2 = np.einsum("ijk,ijk->ij", diff, diff) + eps2          # (nt, ns)
        inv = r2 ** -1.5
        # cross(ω_j, diff_ij) with ω broadcast over targets
        cx = omega[None, :, 1] * diff[..., 2] - omega[None, :, 2] * diff[..., 1]
        cy = omega[None, :, 2] * diff[..., 0] - omega[None, :, 0] * diff[..., 2]
        cz = omega[None, :, 0] * diff[..., 1] - omega[None, :, 1] * diff[..., 0]
        out[:, 0] += prefactor * np.einsum("ij,ij->i", cx, inv)
        out[:, 1] += prefactor * np.einsum("ij,ij->i", cy, inv)
        out[:, 2] += prefactor * np.einsum("ij,ij->i", cz, inv)

    def br_allpairs(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        omega: np.ndarray,
        eps2: float,
        prefactor: float,
        out: np.ndarray,
        *,
        symmetric: bool = False,
        batch_pairs: int = 2_000_000,
    ) -> None:
        nt, ns = targets.shape[0], sources.shape[0]
        # Batch over targets so the (bt, ns) temporaries stay bounded.
        bt = max(1, min(nt, batch_pairs // max(ns, 1)))
        for start in range(0, nt, bt):
            stop = min(start + bt, nt)
            self._accumulate(
                out[start:stop], targets[start:stop], sources, omega,
                eps2, prefactor,
            )

    def br_neighbors(
        self,
        targets: np.ndarray,
        sources: np.ndarray,
        omega: np.ndarray,
        offsets: np.ndarray,
        indices: np.ndarray,
        eps2: float,
        prefactor: float,
        out: np.ndarray,
        *,
        batch_pairs: int = 4_000_000,
    ) -> None:
        total_pairs = int(offsets[-1])
        counts = np.diff(offsets)
        pair_target = np.repeat(
            np.arange(targets.shape[0], dtype=np.int64), counts
        )
        for start in range(0, total_pairs, batch_pairs):
            stop = min(start + batch_pairs, total_pairs)
            ti = pair_target[start:stop]
            sj = indices[start:stop]
            diff = targets[ti] - sources[sj]                  # (b, 3)
            r2 = np.einsum("ij,ij->i", diff, diff) + eps2
            inv = prefactor * r2 ** -1.5
            o = omega[sj]
            contrib = np.empty_like(diff)
            contrib[:, 0] = (o[:, 1] * diff[:, 2] - o[:, 2] * diff[:, 1]) * inv
            contrib[:, 1] = (o[:, 2] * diff[:, 0] - o[:, 0] * diff[:, 2]) * inv
            contrib[:, 2] = (o[:, 0] * diff[:, 1] - o[:, 1] * diff[:, 0]) * inv
            np.add.at(out, ti, contrib)

    # -- Barnes-Hut tree kernels ------------------------------------------

    def farfield_eval(
        self,
        targets: np.ndarray,
        centers: np.ndarray,
        moment_m: np.ndarray,
        moment_s: np.ndarray,
        moment_q: np.ndarray,
        pair_targets: np.ndarray,
        pair_nodes: np.ndarray,
        eps2: float,
        prefactor: float,
        out: np.ndarray,
        *,
        batch_pairs: int = 4_000_000,
    ) -> None:
        total = int(pair_targets.shape[0])
        for start in range(0, total, batch_pairs):
            stop = min(start + batch_pairs, total)
            ti = pair_targets[start:stop]
            ni = pair_nodes[start:stop]
            r = targets[ti] - centers[ni]                     # (b, 3)
            u = np.einsum("ij,ij->i", r, r) + eps2
            g = u ** -1.5
            h = 3.0 * u ** -2.5
            qr = np.einsum("bij,bj->bi", moment_q[ni], r)
            contrib = g[:, None] * (
                np.cross(moment_m[ni], r) - moment_s[ni]
            )
            contrib += h[:, None] * np.cross(qr, r)
            contrib *= prefactor
            np.add.at(out, ti, contrib)

    # -- reductions -------------------------------------------------------

    def max_displacement(self, a: np.ndarray, b: np.ndarray) -> float:
        if a.shape[0] == 0:
            return 0.0
        diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
        dist2 = np.einsum("ij,ij->i", diff, diff)
        return float(np.sqrt(dist2.max()))

    # -- spectral ---------------------------------------------------------

    def riesz_w3hat(
        self,
        g1_hat: np.ndarray,
        g2_hat: np.ndarray,
        kx: np.ndarray,
        ky: np.ndarray,
    ) -> np.ndarray:
        kmag = np.sqrt(kx * kx + ky * ky)
        with np.errstate(divide="ignore", invalid="ignore"):
            mult = np.where(kmag > 0.0, 0.5 / np.where(kmag > 0, kmag, 1.0), 0.0)
        return 1j * (kx * g2_hat - ky * g1_hat) * mult

    # -- stencils ---------------------------------------------------------

    def stencil_dx(self, full: np.ndarray, spacing: float) -> np.ndarray:
        return stencils.dx(full, spacing)

    def stencil_dy(self, full: np.ndarray, spacing: float) -> np.ndarray:
        return stencils.dy(full, spacing)

    def stencil_laplacian(
        self, full: np.ndarray, dx_: float, dy_: float
    ) -> np.ndarray:
        return stencils.laplacian(full, dx_, dy_)

    # -- fused state updates ----------------------------------------------

    def rk3_axpy(
        self,
        out: np.ndarray,
        u: np.ndarray,
        au: float,
        u0: np.ndarray,
        a0: float,
        du: np.ndarray,
        adu: float,
    ) -> None:
        # The right-hand side materializes before the assignment, so any
        # aliasing of ``out`` with ``u``/``u0``/``du`` is safe by
        # construction.
        out[...] = au * u + a0 * u0 + adu * du
