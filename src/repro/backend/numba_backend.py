"""Optional numba backend: JIT pair loops, auto-detected at import.

Registered only when ``numba`` is importable; the container image does
not ship it, so this module must degrade to a no-op import.  The JIT
kernels are direct pair loops (no tiling needed — the compiler fuses
the arithmetic), sharing the reference's exact-zero self-interaction
semantics.  ``fastmath`` stays off so reductions keep IEEE ordering
close enough for the 1e-12 cross-backend parity suite.

Only the BR pair kernels are JIT-compiled — the FFT, stencil and axpy
paths inherit the numpy reference, where numpy is already near the
memory-bandwidth roof.
"""

from __future__ import annotations

import numpy as np

from repro.backend.numpy_backend import NumpyBackend

try:  # pragma: no cover - exercised only where numba is installed
    import numba
except ImportError:  # pragma: no cover
    numba = None

__all__ = ["NumbaBackend", "NUMBA_AVAILABLE"]

NUMBA_AVAILABLE = numba is not None

_jit_allpairs = None
_jit_neighbors = None
_jit_maxdisp = None
_jit_farfield = None


def _compile():  # pragma: no cover - requires numba
    """Build the JIT kernels once, on first use."""
    global _jit_allpairs, _jit_neighbors, _jit_maxdisp, _jit_farfield
    if _jit_allpairs is not None:
        return

    @numba.njit(parallel=True, cache=True)
    def allpairs(targets, sources, omega, eps2, prefactor, out):
        nt = targets.shape[0]
        ns = sources.shape[0]
        for i in numba.prange(nt):
            ax = ay = az = 0.0
            tx, ty, tz = targets[i, 0], targets[i, 1], targets[i, 2]
            for j in range(ns):
                dx = tx - sources[j, 0]
                dy = ty - sources[j, 1]
                dz = tz - sources[j, 2]
                r2 = dx * dx + dy * dy + dz * dz + eps2
                inv = 1.0 / (r2 * np.sqrt(r2))
                ax += (omega[j, 1] * dz - omega[j, 2] * dy) * inv
                ay += (omega[j, 2] * dx - omega[j, 0] * dz) * inv
                az += (omega[j, 0] * dy - omega[j, 1] * dx) * inv
            out[i, 0] += prefactor * ax
            out[i, 1] += prefactor * ay
            out[i, 2] += prefactor * az

    @numba.njit(parallel=True, cache=True)
    def neighbors(targets, sources, omega, offsets, indices,
                  eps2, prefactor, out):
        nt = targets.shape[0]
        for i in numba.prange(nt):
            ax = ay = az = 0.0
            tx, ty, tz = targets[i, 0], targets[i, 1], targets[i, 2]
            for p in range(offsets[i], offsets[i + 1]):
                j = indices[p]
                dx = tx - sources[j, 0]
                dy = ty - sources[j, 1]
                dz = tz - sources[j, 2]
                r2 = dx * dx + dy * dy + dz * dz + eps2
                inv = 1.0 / (r2 * np.sqrt(r2))
                ax += (omega[j, 1] * dz - omega[j, 2] * dy) * inv
                ay += (omega[j, 2] * dx - omega[j, 0] * dz) * inv
                az += (omega[j, 0] * dy - omega[j, 1] * dx) * inv
            out[i, 0] += prefactor * ax
            out[i, 1] += prefactor * ay
            out[i, 2] += prefactor * az

    @numba.njit(cache=True)
    def maxdisp(a, b):
        worst = 0.0
        for i in range(a.shape[0]):
            dx = a[i, 0] - b[i, 0]
            dy = a[i, 1] - b[i, 1]
            dz = a[i, 2] - b[i, 2]
            r2 = dx * dx + dy * dy + dz * dz
            if r2 > worst:
                worst = r2
        return np.sqrt(worst)

    @numba.njit(cache=True)
    def farfield(targets, centers, m, s, q, pair_targets, pair_nodes,
                 eps2, prefactor, out):
        # Serial scatter loop: pairs for one target are not contiguous,
        # so a prange over pairs would race on ``out``.
        for p in range(pair_targets.shape[0]):
            i = pair_targets[p]
            c = pair_nodes[p]
            rx = targets[i, 0] - centers[c, 0]
            ry = targets[i, 1] - centers[c, 1]
            rz = targets[i, 2] - centers[c, 2]
            u = rx * rx + ry * ry + rz * rz + eps2
            root = np.sqrt(u)
            g = 1.0 / (u * root)
            h = 3.0 / (u * u * root)
            qrx = q[c, 0, 0] * rx + q[c, 0, 1] * ry + q[c, 0, 2] * rz
            qry = q[c, 1, 0] * rx + q[c, 1, 1] * ry + q[c, 1, 2] * rz
            qrz = q[c, 2, 0] * rx + q[c, 2, 1] * ry + q[c, 2, 2] * rz
            out[i, 0] += prefactor * (
                g * (m[c, 1] * rz - m[c, 2] * ry - s[c, 0])
                + h * (qry * rz - qrz * ry)
            )
            out[i, 1] += prefactor * (
                g * (m[c, 2] * rx - m[c, 0] * rz - s[c, 1])
                + h * (qrz * rx - qrx * rz)
            )
            out[i, 2] += prefactor * (
                g * (m[c, 0] * ry - m[c, 1] * rx - s[c, 2])
                + h * (qrx * ry - qry * rx)
            )

    _jit_allpairs = allpairs
    _jit_neighbors = neighbors
    _jit_maxdisp = maxdisp
    _jit_farfield = farfield


class NumbaBackend(NumpyBackend):  # pragma: no cover - requires numba
    """JIT pair kernels over the numpy reference for everything else."""

    name = "numba"

    def capabilities(self) -> frozenset[str]:
        return frozenset({"host", "jit", "parallel"})

    def br_allpairs(self, targets, sources, omega, eps2, prefactor, out,
                    *, symmetric=False, batch_pairs=2_000_000):
        _compile()
        _jit_allpairs(targets, sources, omega, float(eps2),
                      float(prefactor), out)

    def br_neighbors(self, targets, sources, omega, offsets, indices,
                     eps2, prefactor, out, *, batch_pairs=4_000_000):
        _compile()
        _jit_neighbors(
            targets, sources, omega,
            np.ascontiguousarray(offsets, dtype=np.int64),
            np.ascontiguousarray(indices, dtype=np.int64),
            float(eps2), float(prefactor), out,
        )

    def farfield_eval(self, targets, centers, moment_m, moment_s, moment_q,
                      pair_targets, pair_nodes, eps2, prefactor, out,
                      *, batch_pairs=4_000_000):
        _compile()
        _jit_farfield(
            targets, centers, moment_m, moment_s, moment_q,
            np.ascontiguousarray(pair_targets, dtype=np.int64),
            np.ascontiguousarray(pair_nodes, dtype=np.int64),
            float(eps2), float(prefactor), out,
        )

    def max_displacement(self, a, b):
        if a.shape[0] == 0:
            return 0.0
        _compile()
        return float(_jit_maxdisp(
            np.ascontiguousarray(a, dtype=np.float64),
            np.ascontiguousarray(b, dtype=np.float64),
        ))
