"""Backend registry: named engines, env-var default, graceful fallback.

``get_backend`` is the single resolution point used by every layer
(kernels, ZModel, TimeIntegrator, DistributedFFT2D, Solver, CLI).  It
accepts an :class:`~repro.backend.base.ArrayBackend` instance (passed
through), a registered name, or ``None``/``"auto"`` — which resolves to
``$REPRO_BACKEND`` when set and the ``numpy`` reference otherwise, so
``REPRO_BACKEND=blocked pytest`` drives the whole suite through an
alternative engine without touching any call site.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.backend.base import ArrayBackend
from repro.util.errors import ConfigurationError

__all__ = [
    "available_backends",
    "default_backend_name",
    "describe_backends",
    "get_backend",
    "register_backend",
    "unavailable_backends",
]

#: Name of the always-available reference backend.
REFERENCE = "numpy"

_REGISTRY: dict[str, ArrayBackend] = {}

#: name → reason string, for engines that could not be registered
#: (e.g. numba not importable); used to produce actionable errors.
_UNAVAILABLE: dict[str, str] = {}


def register_backend(backend: ArrayBackend, *, replace: bool = False) -> ArrayBackend:
    """Register ``backend`` under ``backend.name``.

    Re-registering an existing name requires ``replace=True`` so typos
    cannot silently shadow an engine.
    """
    if not isinstance(backend, ArrayBackend):
        raise ConfigurationError(
            f"backend must be an ArrayBackend, got {type(backend).__name__}"
        )
    name = backend.name.strip().lower()
    if not name or name == "abstract":
        raise ConfigurationError(f"backend {backend!r} needs a concrete name")
    if name != backend.name:
        raise ConfigurationError(
            f"backend names must be lowercase, got {backend.name!r}"
        )
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"backend {name!r} is already registered (pass replace=True)"
        )
    _REGISTRY[name] = backend
    _UNAVAILABLE.pop(name, None)
    return backend


def mark_unavailable(name: str, reason: str) -> None:
    """Record why an optional engine is absent (better error messages)."""
    if name not in _REGISTRY:
        _UNAVAILABLE[name] = reason


def available_backends() -> list[str]:
    """Registered backend names, reference first, then alphabetical."""
    names = sorted(_REGISTRY)
    if REFERENCE in names:
        names.remove(REFERENCE)
        names.insert(0, REFERENCE)
    return names


def unavailable_backends() -> dict[str, str]:
    """Optional engines that could not register: ``{name: reason}``.

    Non-empty entries are the *visible* skip path for import-gated
    accelerator engines — CI asserts on this so a missing cupy shows up
    as an exercised fallback, not a silently green matrix cell.
    """
    return dict(sorted(_UNAVAILABLE.items()))


def describe_backends() -> list[dict[str, str]]:
    """One row per known engine for ``rocketrig --list-backends``.

    Registered engines report their device and capability tags;
    unavailable ones report the reason they are absent.
    """
    rows = []
    for name in available_backends():
        backend = _REGISTRY[name]
        rows.append({
            "name": name,
            "status": "available",
            "device": backend.device,
            "capabilities": ",".join(sorted(backend.capabilities())),
        })
    for name, reason in unavailable_backends().items():
        rows.append({
            "name": name,
            "status": "unavailable",
            "device": "-",
            "capabilities": reason,
        })
    return rows


def default_backend_name() -> str:
    """``$REPRO_BACKEND`` when set, else the numpy reference."""
    return os.environ.get("REPRO_BACKEND", "").strip() or REFERENCE


def get_backend(
    spec: "ArrayBackend | str | None" = None,
) -> ArrayBackend:
    """Resolve a backend instance from a spec.

    ``spec`` may be an instance (returned as-is), a registered name,
    or ``None``/``"auto"`` for the environment-selected default.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    name: Optional[str] = spec
    if name is None or name == "auto":
        name = default_backend_name()
    name = str(name).strip().lower()
    try:
        return _REGISTRY[name]
    except KeyError:
        pass
    hint = _UNAVAILABLE.get(name)
    detail = f" ({hint})" if hint else ""
    raise ConfigurationError(
        f"unknown compute backend {name!r}{detail}; "
        f"available: {available_backends()}"
    )
