"""Reference 4th-order stencil kernels shared by backends and operators.

The "two-node-deep stencil" math of :mod:`repro.core.operators` lives
here, one layer down, so compute backends can use it without importing
the core package (backends sit below core in the layering).  The
formulas (spacing ``d``):

* first derivative:  ``(f[-2] - 8 f[-1] + 8 f[+1] - f[+2]) / (12 d)``
* second derivative: ``(-f[-2] + 16 f[-1] - 30 f[0] + 16 f[+1] - f[+2]) / (12 d²)``

All functions take a *full* ghosted array (halo depth 2) and return
the result on owned nodes only.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigurationError

__all__ = ["HALO", "interior", "check", "dx", "dy", "laplacian"]

HALO = 2


def interior(full: np.ndarray, oi: int, oj: int) -> np.ndarray:
    """Owned-region view shifted by (oi, oj) nodes (|oi|,|oj| ≤ halo)."""
    h = HALO
    ni = full.shape[0] - 2 * h
    nj = full.shape[1] - 2 * h
    return full[h + oi: h + oi + ni, h + oj: h + oj + nj]


def check(full: np.ndarray) -> None:
    if full.shape[0] < 2 * HALO + 1 or full.shape[1] < 2 * HALO + 1:
        raise ConfigurationError(
            f"array {full.shape} too small for depth-{HALO} stencils"
        )


def dx(full: np.ndarray, spacing: float) -> np.ndarray:
    """4th-order ∂/∂α₁ (axis 0) on owned nodes."""
    check(full)
    return (
        interior(full, -2, 0)
        - 8.0 * interior(full, -1, 0)
        + 8.0 * interior(full, 1, 0)
        - interior(full, 2, 0)
    ) / (12.0 * spacing)


def dy(full: np.ndarray, spacing: float) -> np.ndarray:
    """4th-order ∂/∂α₂ (axis 1) on owned nodes."""
    check(full)
    return (
        interior(full, 0, -2)
        - 8.0 * interior(full, 0, -1)
        + 8.0 * interior(full, 0, 1)
        - interior(full, 0, 2)
    ) / (12.0 * spacing)


def laplacian(full: np.ndarray, dx_: float, dy_: float) -> np.ndarray:
    """4th-order surface-parameter Laplacian ∂²/∂α₁² + ∂²/∂α₂²."""
    check(full)
    d2x = (
        -interior(full, -2, 0)
        + 16.0 * interior(full, -1, 0)
        - 30.0 * interior(full, 0, 0)
        + 16.0 * interior(full, 1, 0)
        - interior(full, 2, 0)
    ) / (12.0 * dx_ * dx_)
    d2y = (
        -interior(full, 0, -2)
        + 16.0 * interior(full, 0, -1)
        - 30.0 * interior(full, 0, 0)
        + 16.0 * interior(full, 0, 1)
        - interior(full, 0, 2)
    ) / (12.0 * dy_ * dy_)
    return d2x + d2y
