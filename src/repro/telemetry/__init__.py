"""Measurement layer: spans, metrics, exporters and drift reports.

``repro.telemetry`` is the *measured* counterpart of the *modeled*
performance stack (:mod:`repro.machine`).  It provides:

* :mod:`repro.telemetry.metrics` — counters/gauges/histograms published
  by solver, neighbor-cache, tree and campaign code, and the
  ``NullMetrics`` disabled path;
* :mod:`repro.telemetry.perfetto` — Chrome-trace-event export of a
  timed :class:`~repro.mpi.trace.CommTrace` (one track per rank, phase
  spans, comm instants with send→recv flow arrows), the format behind
  ``rocketrig --profile``;
* :mod:`repro.telemetry.artifacts` — the flat per-run
  ``telemetry.json`` document and the mkstemp+fsync+``os.replace``
  atomic JSON writer shared by store, exporters and status heartbeats;
* :mod:`repro.telemetry.drift` — per-phase model-vs-measured drift
  reports (imported lazily: drift depends on :mod:`repro.machine`,
  which depends on :mod:`repro.mpi.trace`, which depends on this
  package's metrics module — eager import would close that cycle).

See ``docs/observability.md`` for the end-to-end walkthrough.
"""

from __future__ import annotations

from repro.telemetry.artifacts import (
    TELEMETRY_SCHEMA,
    atomic_write_json,
    build_run_telemetry,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
)
from repro.telemetry.perfetto import (
    chrome_trace_events,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "TELEMETRY_SCHEMA",
    "atomic_write_json",
    "build_run_telemetry",
    "chrome_trace_events",
    "validate_chrome_trace",
    "write_chrome_trace",
    "drift_report",
    "format_drift_table",
]


def __getattr__(name: str):
    # Lazy: repro.telemetry.drift -> repro.machine.replay ->
    # repro.mpi.trace -> repro.telemetry.metrics.  Importing drift at
    # package-import time would close the cycle.
    if name in ("drift_report", "format_drift_table"):
        from repro.telemetry import drift

        return getattr(drift, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
