"""Per-run telemetry artifacts and the atomic-JSON write primitive.

A *telemetry artifact* is the flat ``telemetry.json`` document written
next to ``result.json`` for every completed campaign run (and by
``rocketrig --profile`` for ad-hoc runs).  It flattens a run's timed
:class:`~repro.mpi.trace.CommTrace` — per-phase wall clocks, kernel
wall totals, comm/compute event counts — together with the run's
metrics-registry snapshot into one JSON object that
``campaign.report`` can address with dotted keys
(``telemetry.phase.fft.wall``, ``telemetry.metrics.solver.steps``).

:func:`atomic_write_json` is the single durable-write primitive the
whole telemetry layer uses (mkstemp in the destination directory,
fsync, ``os.replace``) — the same crash-safety discipline
:class:`~repro.campaign.store.CampaignStore` established for
``result.json``, now shared so store, exporters and status heartbeats
cannot drift apart.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

__all__ = [
    "TELEMETRY_SCHEMA",
    "atomic_write_json",
    "build_run_telemetry",
]

#: Schema tag stamped into every telemetry artifact so downstream
#: tooling can detect format changes.
TELEMETRY_SCHEMA = "repro.telemetry/1"


def atomic_write_json(path: str, payload: Any, *, indent: int = 2) -> None:
    """Write ``payload`` as JSON to ``path`` atomically.

    The document is serialized to a ``mkstemp`` sibling in the
    destination directory, fsync'd, then ``os.replace``'d into place —
    readers (status pollers, report generators, other processes) never
    observe a torn file, and a crash mid-write leaves the previous
    version intact.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        # mkstemp creates 0600; restore the umask-default mode a plain
        # open() would have produced, so shared results trees stay
        # readable by their other consumers.
        try:
            umask = os.umask(0)
            os.umask(umask)
            os.fchmod(fd, 0o666 & ~umask)
        except (AttributeError, OSError):  # pragma: no cover - non-POSIX
            pass
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=indent, sort_keys=True, default=str)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def build_run_telemetry(
    trace,
    *,
    elapsed: Optional[float] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Flatten a timed trace (+ its metrics registry) into the
    ``telemetry.json`` document.

    Layout::

        {
          "schema": "repro.telemetry/1",
          "elapsed": 1.23,                      # run wall-clock, if known
          "phase": {"fft": {"wall": .., "wall_by_rank": {"0": ..},
                            "comm_events": n, "compute_events": n}, ...},
          "kernel": {"br_pairs": {"wall": .., "count": n}, ...},
          "events": {"comm": n, "compute": n, "spans": n},
          "metrics": {"solver.steps": 40, ...},
        }

    ``phase.<name>.wall`` is the slowest rank's measured self-time
    (:meth:`~repro.mpi.trace.CommTrace.phase_wall_max`), the
    BSP-consistent counterpart of the machine model's phase time —
    which is what makes ``telemetry.phase.X.wall`` directly comparable
    with modeled drift reports.  An untimed/Null trace produces an
    honest, mostly-empty document rather than failing.
    """
    walls = trace.phase_walls()
    comm_events = trace.events
    compute_events = trace.compute_events

    phase_doc: Dict[str, Any] = {}
    phase_names = list(walls)
    for name in trace.phases():
        if name not in phase_names:
            phase_names.append(name)
    for name in phase_names:
        per_rank = walls.get(name, {})
        phase_doc[name] = {
            "wall": max(per_rank.values()) if per_rank else 0.0,
            "wall_by_rank": {str(r): t for r, t in sorted(per_rank.items())},
            "comm_events": sum(1 for ev in comm_events if ev.phase == name),
            "compute_events": sum(
                1 for ev in compute_events if ev.phase == name
            ),
        }

    kernel_doc: Dict[str, Any] = {}
    for cev in compute_events:
        bucket = kernel_doc.setdefault(cev.kernel, {"wall": 0.0, "count": 0})
        bucket["count"] += 1
        if cev.t_wall is not None:
            bucket["wall"] += cev.t_wall

    doc: Dict[str, Any] = {
        "schema": TELEMETRY_SCHEMA,
        "phase": phase_doc,
        "kernel": kernel_doc,
        "events": {
            "comm": len(comm_events),
            "compute": len(compute_events),
            "spans": len(trace.spans),
        },
        "metrics": trace.metrics.snapshot(),
    }
    if elapsed is not None:
        doc["elapsed"] = float(elapsed)
    if extra:
        doc.update(extra)
    return doc
