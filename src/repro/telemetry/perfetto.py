"""Chrome-trace-event (Perfetto) export of a timed CommTrace.

Converts the wall-clock spans and stamped events of a
:class:`~repro.mpi.trace.CommTrace` into the Chrome trace-event JSON
format, which both ``chrome://tracing`` and https://ui.perfetto.dev load
directly:

* one **track per rank** — the exporter emits the whole run as one
  process (``pid 0``) with a named thread per rank, so rank timelines
  stack vertically exactly like an MPI timeline view;
* **phase spans** become complete (``"ph": "X"``) slices with real
  measured durations; nesting inside a rank renders as slice stacking;
* **communication events** become thread-scoped instants
  (``"ph": "i"``), and every matched send/recv pair additionally gets a
  **flow arrow** (``"ph": "s"`` → ``"ph": "f"``) from the sending
  rank's timeline to the receiving rank's, matched FIFO per
  (source, destination, tag) — the same matching discipline the
  simulator's mailboxes implement.

Timestamps are exported in microseconds relative to the earliest stamp
in the trace, so traces start at t=0 regardless of the
``perf_counter`` epoch.  :func:`validate_chrome_trace` is the schema
check the test suite and CI run against every exported file, and
``python -m repro.telemetry.perfetto <file.json>`` runs it standalone.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: Trace-event timestamps are microseconds.
_US = 1e6

#: Event-kind → Perfetto color hint (keeps comm instants visually
#: distinct from phase slices without mandating a colour scheme).
_INSTANT_SCOPE_THREAD = "t"


def _ranks_of(trace) -> list[int]:
    ranks = {span.rank for span in trace.spans}
    ranks.update(ev.rank for ev in trace.events)
    ranks.update(cev.rank for cev in trace.compute_events)
    return sorted(ranks) if ranks else [0]


def _time_base(trace) -> float:
    stamps = [span.t_start for span in trace.spans]
    stamps.extend(ev.t_stamp for ev in trace.events if ev.t_stamp is not None)
    stamps.extend(
        cev.t_stamp for cev in trace.compute_events if cev.t_stamp is not None
    )
    return min(stamps) if stamps else 0.0


def chrome_trace_events(
    trace, *, process_name: str = "rocketrig"
) -> dict[str, Any]:
    """The Chrome trace-event payload (``{"traceEvents": [...]}``).

    ``trace`` must be a timed :class:`~repro.mpi.trace.CommTrace`; an
    untimed trace (no spans, no stamps) still produces a valid payload
    containing only the track-naming metadata, so callers need no
    special-casing.
    """
    base = _time_base(trace)
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "ts": 0,
            "args": {"name": process_name},
        }
    ]
    for rank in _ranks_of(trace):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "ts": 0,
                "args": {"name": f"rank {rank}"},
            }
        )

    # Phase spans: complete slices with measured durations.
    for span in trace.spans:
        events.append(
            {
                "name": span.phase,
                "cat": "phase",
                "ph": "X",
                "pid": 0,
                "tid": span.rank,
                "ts": (span.t_start - base) * _US,
                "dur": span.duration * _US,
                "args": {"depth": span.depth, "self_us": span.self_time * _US},
            }
        )

    # Communication instants + send/recv flow arrows.  Pairs match FIFO
    # per (source, destination, tag) — the simulator's own discipline.
    pending: dict[tuple[int, int, int], list[int]] = {}
    flow_id = 0
    for ev in trace.events:
        if ev.t_stamp is None:
            continue
        ts = (ev.t_stamp - base) * _US
        args: dict[str, Any] = {"nbytes": ev.nbytes, "phase": ev.phase}
        if ev.peer is not None:
            args["peer"] = ev.peer
        events.append(
            {
                "name": ev.kind,
                "cat": "comm",
                "ph": "i",
                "s": _INSTANT_SCOPE_THREAD,
                "pid": 0,
                "tid": ev.rank,
                "ts": ts,
                "args": args,
            }
        )
        if ev.kind == "send" and ev.peer is not None:
            flow_id += 1
            pending.setdefault((ev.rank, ev.peer, ev.tag), []).append(flow_id)
            events.append(
                {
                    "name": "msg",
                    "cat": "comm",
                    "ph": "s",
                    "id": flow_id,
                    "pid": 0,
                    "tid": ev.rank,
                    "ts": ts,
                }
            )
        elif ev.kind == "recv" and ev.peer is not None:
            queue = pending.get((ev.peer, ev.rank, ev.tag))
            if queue:
                events.append(
                    {
                        "name": "msg",
                        "cat": "comm",
                        "ph": "f",
                        "bp": "e",
                        "id": queue.pop(0),
                        "pid": 0,
                        "tid": ev.rank,
                        "ts": ts,
                    }
                )

    # Spans are recorded when they *close*, so append order is not
    # timestamp order.  Emit sorted by begin time (longer slices first
    # on ties, so parents precede the children nested inside them) —
    # viewers tolerate unsorted input but the schema gate does not.
    events.sort(key=lambda ev: (ev["ts"], -ev.get("dur", 0.0)))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, trace, *, process_name: str = "rocketrig"
) -> dict[str, Any]:
    """Export ``trace`` to ``path`` atomically; returns the payload."""
    from repro.telemetry.artifacts import atomic_write_json

    payload = chrome_trace_events(trace, process_name=process_name)
    atomic_write_json(path, payload)
    return payload


def validate_chrome_trace(payload: dict[str, Any]) -> list[str]:
    """Schema check on an exported payload; returns problem strings.

    Verifies what a trace viewer needs: a ``traceEvents`` list whose
    entries all carry ``ph``/``ts``/``pid``/``tid``, duration events
    carrying a non-negative ``dur``, and per-track begin timestamps
    that never run backwards (events are appended in recording order,
    so a non-monotone track means a broken clock, not viewer pedantry).
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    last_ts: dict[tuple[Any, Any], float] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        for key in ("ph", "ts", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i}: missing required key {key!r}")
        ph = ev.get("ph")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: X event with bad dur {dur!r}")
        if ph in ("X", "i", "s", "f"):
            track = (ev.get("pid"), ev.get("tid"))
            if ts + 1e-9 < last_ts.get(track, 0.0):
                problems.append(
                    f"event {i}: ts runs backwards on track {track} "
                    f"({ts} < {last_ts[track]})"
                )
            last_ts[track] = max(last_ts.get(track, 0.0), float(ts))
    return problems


def _main(argv: Optional[Iterable[str]] = None) -> int:
    """``python -m repro.telemetry.perfetto <trace.json> [...]``:
    validate exported files (CI's schema gate)."""
    import sys

    paths = list(argv if argv is not None else sys.argv[1:])
    if not paths:
        print("usage: python -m repro.telemetry.perfetto TRACE.json [...]")
        return 2
    status = 0
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        problems = validate_chrome_trace(payload)
        n = len(payload.get("traceEvents", []))
        if problems:
            status = 1
            print(f"{path}: INVALID ({len(problems)} problems, {n} events)")
            for problem in problems[:20]:
                print(f"  - {problem}")
        else:
            print(f"{path}: ok ({n} events)")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(_main())
