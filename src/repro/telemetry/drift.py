"""Model-vs-measured drift reports.

The machine model (:mod:`repro.machine.replay`) predicts per-phase time
from first principles; a timed :class:`~repro.mpi.trace.CommTrace`
measures it.  The *drift report* puts the two side by side, per phase:

* **modeled** — BSP phase time from ``replay_trace`` (slowest rank's
  accumulated α-β comm + roofline compute);
* **measured** — the slowest rank's summed span self-time
  (:meth:`~repro.mpi.trace.CommTrace.phase_wall_max`), the directly
  comparable BSP quantity;
* **drift** — measured − modeled, and the measured/modeled ratio.

Interpretation: a ratio near 1 on a machine spec describing *this*
host means the model is trustworthy for scaling extrapolation; a large
ratio on the Lassen spec is expected (you are not running on Lassen)
but should be *stable* across phases — phase-dependent drift flags a
mis-modeled pattern, not a slower machine.  ``rocketrig --profile``
prints the table and ``benchmarks/bench_telemetry.py`` archives one in
``BENCH_telemetry.json``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.machine.model import MachineSpec
from repro.machine.replay import replay_trace

__all__ = ["drift_report", "format_drift_table"]


def drift_report(trace, spec: MachineSpec) -> Dict[str, Any]:
    """Per-phase modeled vs measured times of a timed trace on ``spec``.

    Returns ``{"machine": name, "phases": [{"phase", "modeled",
    "measured", "drift", "ratio"}, ...], "total": {...}}`` with phases
    in trace order.  ``ratio`` is ``None`` where the model predicts
    zero time (nothing to divide by), and phases that only ever
    measured zero (untimed trace) keep ``measured=0.0`` so the report
    degrades gracefully rather than failing.
    """
    result = replay_trace(trace, spec)
    walls = trace.phase_walls()

    names: List[str] = list(result.phases)
    for name in walls:
        if name not in names:
            names.append(name)

    rows: List[Dict[str, Any]] = []
    total_modeled = 0.0
    total_measured = 0.0
    for name in names:
        modeled = result.phase_time(name)
        per_rank = walls.get(name, {})
        measured = max(per_rank.values()) if per_rank else 0.0
        total_modeled += modeled
        total_measured += measured
        rows.append(
            {
                "phase": name,
                "modeled": modeled,
                "measured": measured,
                "drift": measured - modeled,
                "ratio": (measured / modeled) if modeled > 0 else None,
            }
        )

    return {
        "machine": spec.name,
        "nranks": result.nranks,
        "phases": rows,
        "total": {
            "modeled": total_modeled,
            "measured": total_measured,
            "drift": total_measured - total_modeled,
            "ratio": (
                (total_measured / total_modeled) if total_modeled > 0 else None
            ),
        },
    }


def format_drift_table(report: Dict[str, Any]) -> str:
    """Render a drift report as the aligned text table ``rocketrig
    --profile`` prints."""
    header = (
        f"model-vs-measured drift on '{report['machine']}' "
        f"({report['nranks']} ranks)"
    )
    lines = [
        header,
        f"{'phase':<14} {'modeled':>12} {'measured':>12} "
        f"{'drift':>12} {'ratio':>8}",
    ]
    rows = list(report["phases"]) + [dict(report["total"], phase="TOTAL")]
    for row in rows:
        ratio = row.get("ratio")
        ratio_s = f"{ratio:8.2f}" if ratio is not None else f"{'-':>8}"
        lines.append(
            f"{row['phase']:<14} {row['modeled']:>12.6f} "
            f"{row['measured']:>12.6f} {row['drift']:>+12.6f} {ratio_s}"
        )
    return "\n".join(lines)
