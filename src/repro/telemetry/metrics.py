"""Counters, gauges and histograms: the repo's metrics vocabulary.

A :class:`MetricsRegistry` is a thread-safe, name-addressed bag of three
instrument kinds:

* :class:`Counter` — monotonically increasing count (``solver.steps``,
  ``neighbor_cache.rebuilds``, ``campaign.store_hits``);
* :class:`Gauge` — a settable last-value (``campaign.queued``);
* :class:`Histogram` — summary statistics (count/sum/min/max) of an
  observed distribution (``campaign.run_elapsed``).

Instruments are created on first use (``registry.counter("x").inc()``),
so publishing code never has to pre-declare anything.  ``snapshot()``
flattens the registry into the JSON-able dict that lands in per-run
``telemetry.json`` artifacts and campaign ``status.json`` heartbeats;
``merge()`` folds one snapshot into another registry, which is how
worker-process metrics travel back to the campaign parent.

Instrumented code holds a registry reference it got from its context —
solver-side code uses the one attached to its run's
:class:`~repro.mpi.trace.CommTrace` (``comm.trace.metrics``), campaign
code the executor's — so per-run isolation comes for free.  When
telemetry is disabled the context hands out :class:`NullMetrics`
instead, whose instruments are shared no-op singletons: the hot path
pays one dict lookup and an empty method call, nothing else.

This module deliberately imports nothing from the rest of ``repro`` so
the trace layer can depend on it without cycles.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_json(self) -> float:
        return self._value


class Gauge:
    """Last-value instrument (set/adjust, no monotonicity contract)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def adjust(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def to_json(self) -> float:
        return self._value


class Histogram:
    """Streaming summary (count/sum/min/max) of observed values."""

    __slots__ = ("name", "count", "sum", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_json(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Thread-safe, create-on-first-use instrument registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, Any] = {}

    def _get(self, name: str, cls: type) -> Any:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(name)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __iter__(self) -> Iterator[Any]:
        with self._lock:
            return iter(list(self._instruments.values()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able ``{name: value-or-summary}`` view, name-sorted."""
        with self._lock:
            items = sorted(self._instruments.items())
        return {name: inst.to_json() for name, inst in items}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` from elsewhere (e.g. a worker
        process) into this registry: counters add, gauges take the
        incoming value, histogram summaries combine."""
        for name, value in (snapshot or {}).items():
            if isinstance(value, dict):
                hist = self.histogram(name)
                with hist._lock:
                    incoming = int(value.get("count", 0))
                    if incoming > 0:
                        hist.count += incoming
                        hist.sum += float(value.get("sum", 0.0))
                        vmin = float(value.get("min", 0.0))
                        vmax = float(value.get("max", 0.0))
                        hist.min = vmin if hist.min is None else min(hist.min, vmin)
                        hist.max = vmax if hist.max is None else max(hist.max, vmax)
            else:
                counter = self.counter(name)
                with counter._lock:
                    counter._value += float(value)

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()


class _NullInstrument:
    """Shared no-op endpoint behind every NullMetrics name."""

    __slots__ = ()
    name = "null"
    value = 0.0
    count = 0
    sum = 0.0
    min = None
    max = None
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        return

    def set(self, value: float) -> None:
        return

    def adjust(self, delta: float) -> None:
        return

    def observe(self, value: float) -> None:
        return

    def to_json(self) -> float:
        return 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics(MetricsRegistry):
    """A registry that records nothing (telemetry disabled).

    Keeping the MetricsRegistry interface lets instrumented code
    publish unconditionally; the no-op singleton instrument makes the
    disabled path one attribute access plus an empty call.
    """

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def snapshot(self) -> Dict[str, Any]:
        return {}

    def merge(self, snapshot: Dict[str, Any]) -> None:
        return
