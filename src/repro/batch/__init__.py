"""Batched many-scenario execution: fleets of small interfaces.

Exports :class:`ScenarioFleet` — the struct-of-arrays engine that
advances N independent same-grid scenarios per backend kernel
invocation — and :func:`fleet_key`, the eligibility/grouping predicate
the campaign fast path and ``rocketrig batch`` use to decide which run
specs can share a fleet.  See :mod:`repro.batch.fleet` for the model
and parity contract.
"""

from repro.batch.fleet import ScenarioFleet, fleet_key

__all__ = ["ScenarioFleet", "fleet_key"]
