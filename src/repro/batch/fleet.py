"""ScenarioFleet: advance N small interfaces per kernel invocation.

One solver run = one interface; heavy traffic means thousands of
*small* concurrent simulations where per-run Python and dispatch
overhead dwarfs the math.  This module batches them: a struct-of-arrays
container (bluesky's ``Traffic`` shape) holds N independent same-grid
scenarios in stacked arrays ``(N, ny + 2h, nx + 2h, 3)`` and advances
the whole fleet in lockstep — one ``*_batched`` backend invocation per
RK3 stage for the entire batch, with vectorized create/finish/remove so
completed scenarios compact out without stalling the rest.

Scenarios share the grid geometry (shape, extent, periodicity, order,
BR solver) — that is what :func:`fleet_key` hashes — but keep their own
physics: Atwood number, gravity, viscosity, Bernoulli constant,
desingularization ε, timestep and initial condition all live in
per-scenario ``(N,)`` vectors threaded through the batched kernels.

Parity contract
---------------
A fleet-stepped scenario reproduces the same scenario run solo through
:class:`repro.core.solver.Solver` to 1e-12 on every registered backend
(bitwise on the numpy reference): initial state evaluation is shared
(:func:`repro.core.initial_conditions.initial_state`), the single-rank
halo/boundary sequence is replayed exactly, and the batched kernels
replicate their scalar counterparts' accumulation order per scenario.
The benchmark gate in ``benchmarks/bench_batch.py`` and the suite in
``tests/batch/`` enforce this.

Telemetry: fleets publish ``batch.scenarios_active`` (gauge),
``batch.steps`` / ``batch.scenario_steps`` / ``batch.scenarios_completed``
(counters) and per-stage spans (``batch_halo``, ``batch_stencil``,
``batch_fft``, ``batch_br``, ``batch_integrate``) on the trace they are
given.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence

import numpy as np

from repro.backend import get_backend
from repro.core.initial_conditions import InitialCondition, initial_state
from repro.core.kernels import PAIR_FLOPS
from repro.core.solver import SolverConfig
from repro.core.zmodel import Order
from repro.core import operators as ops
from repro.grid.global_mesh import GlobalMesh2D
from repro.mpi.trace import CommTrace, NullTrace
from repro.util.errors import ConfigurationError

__all__ = ["ScenarioFleet", "fleet_key"]

_HALO = 2
_PAIR_BYTES = 9 * 8.0

# Shu-Osher TVD-RK3 stage coefficients (au, a0, adu) — identical to
# repro.core.time_integrator.TimeIntegrator.
_STAGE_COEFFS = (
    (0.0, 1.0, 1.0),
    (0.25, 0.75, 0.25),
    (2.0 / 3.0, 1.0 / 3.0, 2.0 / 3.0),
)


def fleet_key(config: SolverConfig) -> Optional[tuple]:
    """Hashable batching key, or ``None`` if the config is ineligible.

    Two configs with equal keys can share one :class:`ScenarioFleet`:
    they agree on everything the stacked arrays and shared kernels need
    (grid shape/extent/periodicity, solve order, BR solver choice,
    compute backend) while Atwood/gravity/mu/bernoulli/eps/dt/IC vary
    per scenario.  Ineligible configs — approximate BR solvers (the
    cutoff/tree neighbor machinery is not batched yet), or order/
    boundary combinations the solver itself rejects — return ``None``
    so callers fall back to solo execution.
    """
    try:
        order = Order.parse(config.order)
    except (ConfigurationError, ValueError):
        return None
    periodic = (bool(config.periodic[0]), bool(config.periodic[1]))
    if order in (Order.LOW, Order.MEDIUM) and not all(periodic):
        return None
    br: tuple = (None, False)
    if order in (Order.MEDIUM, Order.HIGH):
        if config.br_solver != "exact":
            return None
        if config.br_images and not all(periodic):
            return None
        br = ("exact", bool(config.br_images))
    return (
        (int(config.num_nodes[0]), int(config.num_nodes[1])),
        (float(config.low[0]), float(config.low[1])),
        (float(config.high[0]), float(config.high[1])),
        periodic,
        order.value,
        br,
        config.backend,
    )


class ScenarioFleet:
    """Struct-of-arrays engine advancing N scenarios in lockstep.

    Parameters
    ----------
    template:
        A :class:`SolverConfig` fixing the shared geometry (its
        per-scenario physics fields only seed defaults — every
        ``add()`` brings its own).  Must be fleet-eligible
        (``fleet_key(template) is not None``).
    trace:
        Optional :class:`CommTrace` receiving per-stage spans, compute
        events and ``batch.*`` metrics; defaults to a no-op
        :class:`NullTrace`.
    retain_state:
        When true, finished scenarios' results keep copies of the final
        owned ``z``/``w`` arrays (parity tests, benchmarks).
    """

    def __init__(
        self,
        template: SolverConfig,
        *,
        trace: Optional[CommTrace] = None,
        retain_state: bool = False,
    ) -> None:
        key = fleet_key(template)
        if key is None:
            raise ConfigurationError(
                "config is not fleet-eligible (batched stepping needs the "
                "exact BR solver and solver-legal order/boundary "
                f"combinations): nodes={template.num_nodes} "
                f"order={template.order} br={template.br_solver} "
                f"periodic={template.periodic}"
            )
        self.key = key
        self.template = template
        self.order = Order.parse(template.order)
        self.backend = get_backend(template.backend)
        self.trace = trace if trace is not None else NullTrace()
        self.metrics = self.trace.metrics
        self.retain_state = bool(retain_state)

        self.mesh = GlobalMesh2D.create(
            template.low, template.high, template.num_nodes, template.periodic
        )
        self.shape = self.mesh.num_nodes
        n0, n1 = self.shape
        h = _HALO
        self._full_shape = (n0 + 2 * h, n1 + 2 * h)
        X, Y = self.mesh.node_coordinates(self.mesh.node_space)
        self._X, self._Y = X, Y
        self._dx, self._dy = self.mesh.spacings
        self._prefactor = self.mesh.cell_area / (4.0 * np.pi)

        self._need_fft = self.order in (Order.LOW, Order.MEDIUM)
        self._need_br = self.order in (Order.MEDIUM, Order.HIGH)
        if self._need_fft:
            kx1d, ky1d = self.mesh.wavenumbers()
            self._kx, self._ky = np.meshgrid(kx1d, ky1d, indexing="ij")
        if self._need_br:
            ext = self.mesh.extent
            if template.br_images:
                self._shifts = [
                    (sx * ext[0], sy * ext[1])
                    for sx in (-1, 0, 1)
                    for sy in (-1, 0, 1)
                ]
            else:
                self._shifts = [(0.0, 0.0)]

        # Struct-of-arrays state: stacked ghosted fields plus (N,)
        # per-scenario parameter/progress vectors, compacted together.
        self._z = np.zeros((0,) + self._full_shape + (3,))
        self._w = np.zeros((0,) + self._full_shape + (2,))
        self._atwood = np.zeros(0)
        self._gravity = np.zeros(0)
        self._mu = np.zeros(0)
        self._bernoulli = np.zeros(0)
        self._dt = np.zeros(0)
        self._eps2 = np.zeros(0)
        self._time = np.zeros(0)
        self._steps_done = np.zeros(0, dtype=np.int64)
        self._steps_target = np.zeros(0, dtype=np.int64)
        self._ids: list[int] = []
        self._next_id = 0
        self.results: dict[int, dict] = {}
        self.fleet_steps = 0

    # -- population management -------------------------------------------

    @property
    def size(self) -> int:
        """Number of scenarios currently active in the batch."""
        return len(self._ids)

    @property
    def active_ids(self) -> tuple[int, ...]:
        """Scenario ids still being advanced, in batch order."""
        return tuple(self._ids)

    def add(self, config: SolverConfig, ic: InitialCondition, steps: int) -> int:
        """Add one scenario; returns its fleet-unique scenario id."""
        return self.add_many([(config, ic, steps)])[0]

    def add_many(
        self,
        items: Sequence[tuple[SolverConfig, InitialCondition, int]],
    ) -> list[int]:
        """Vectorized create: append many scenarios in one extension.

        Every config must share this fleet's key; initial states are
        evaluated through the same helper the solo solver uses, stacked,
        and appended with one concatenate per state/parameter array.
        """
        if not items:
            return []
        for config, _ic, steps in items:
            if fleet_key(config) != self.key:
                raise ConfigurationError(
                    "scenario config does not match the fleet key "
                    f"(fleet: nodes={self.template.num_nodes} "
                    f"order={self.template.order}; got: "
                    f"nodes={config.num_nodes} order={config.order})"
                )
            if int(steps) < 0:
                raise ConfigurationError(
                    f"scenario steps must be >= 0, got {steps}"
                )
        nb = len(items)
        n0, n1 = self.shape
        h = _HALO
        z_new = np.zeros((nb,) + self._full_shape + (3,))
        w_new = np.zeros((nb,) + self._full_shape + (2,))
        low = np.asarray(self.mesh.low, dtype=np.float64)
        extent = np.asarray(self.mesh.extent, dtype=np.float64)
        for i, (_config, ic, _steps) in enumerate(items):
            z_own, w_own = initial_state(ic, self._X, self._Y, low, extent)
            z_new[i, h : h + n0, h : h + n1, :] = z_own
            w_new[i, h : h + n0, h : h + n1, :] = w_own

        self._z = np.concatenate([self._z, z_new])
        self._w = np.concatenate([self._w, w_new])
        self._atwood = np.concatenate(
            [self._atwood, [float(c.atwood) for c, _, _ in items]]
        )
        self._gravity = np.concatenate(
            [self._gravity, [float(c.gravity) for c, _, _ in items]]
        )
        self._mu = np.concatenate(
            [self._mu, [float(c.mu) for c, _, _ in items]]
        )
        self._bernoulli = np.concatenate(
            [self._bernoulli, [float(c.bernoulli) for c, _, _ in items]]
        )
        self._dt = np.concatenate(
            [self._dt, [float(c.effective_dt()) for c, _, _ in items]]
        )
        self._eps2 = np.concatenate(
            [self._eps2, [float(c.effective_eps()) ** 2 for c, _, _ in items]]
        )
        self._time = np.concatenate([self._time, np.zeros(nb)])
        self._steps_done = np.concatenate(
            [self._steps_done, np.zeros(nb, dtype=np.int64)]
        )
        self._steps_target = np.concatenate(
            [self._steps_target, np.asarray([int(s) for _, _, s in items],
                                            dtype=np.int64)]
        )
        ids = list(range(self._next_id, self._next_id + nb))
        self._next_id += nb
        self._ids.extend(ids)
        self.metrics.gauge("batch.scenarios_active").set(float(self.size))
        return ids

    def remove(self, scenario_id: int) -> bool:
        """Drop an active scenario without recording a result."""
        if scenario_id not in self._ids:
            return False
        keep = np.ones(self.size, dtype=bool)
        keep[self._ids.index(scenario_id)] = False
        self._compact(keep)
        self.metrics.gauge("batch.scenarios_active").set(float(self.size))
        return True

    def _compact(self, keep: np.ndarray) -> None:
        """Boolean-mask compaction of every stacked/per-scenario array."""
        self._z = self._z[keep]
        self._w = self._w[keep]
        self._atwood = self._atwood[keep]
        self._gravity = self._gravity[keep]
        self._mu = self._mu[keep]
        self._bernoulli = self._bernoulli[keep]
        self._dt = self._dt[keep]
        self._eps2 = self._eps2[keep]
        self._time = self._time[keep]
        self._steps_done = self._steps_done[keep]
        self._steps_target = self._steps_target[keep]
        self._ids = [sid for sid, k in zip(self._ids, keep) if k]

    # -- state access ------------------------------------------------------

    def _index(self, scenario_id: int) -> int:
        try:
            return self._ids.index(scenario_id)
        except ValueError:
            raise ConfigurationError(
                f"scenario {scenario_id} is not active in this fleet"
            ) from None

    def _owned(self, a: np.ndarray) -> np.ndarray:
        h = _HALO
        n0, n1 = self.shape
        return a[:, h : h + n0, h : h + n1]

    def state(self, scenario_id: int) -> tuple[np.ndarray, np.ndarray]:
        """Copies of an active scenario's owned ``(z, w)`` arrays."""
        b = self._index(scenario_id)
        return (
            self._owned(self._z)[b].copy(),
            self._owned(self._w)[b].copy(),
        )

    def diagnostics(self, scenario_id: int) -> dict[str, float]:
        """Per-scenario diagnostics matching ``Solver.diagnostics()``."""
        return self._diag_at(self._index(scenario_id))

    def _diag_at(self, b: int) -> dict[str, float]:
        z_own = self._owned(self._z)[b]
        w_own = self._owned(self._w)[b]
        return {
            "time": float(self._time[b]),
            "steps": float(self._steps_done[b]),
            "amplitude": float(np.max(np.abs(z_own[..., 2]))),
            "vorticity_norm": math.sqrt(float(np.sum(w_own**2))),
            "dt": float(self._dt[b]),
        }

    # -- halo / boundary sequence -----------------------------------------
    #
    # Vectorized replay of the single-rank gather: periodic self-wrap
    # (axis 0 over owned columns, then axis 1 over the full extent —
    # exactly HaloExchange._slabs), followed by the BoundaryCondition
    # corrections in the same per-axis order.

    def _wrap_halo(self, a: np.ndarray) -> None:
        h = _HALO
        n0, n1 = self.shape
        if self.mesh.periodic[0]:
            a[:, 0:h, h : h + n1] = a[:, n0 : n0 + h, h : h + n1]
            a[:, n0 + h : n0 + 2 * h, h : h + n1] = a[:, h : 2 * h, h : h + n1]
        if self.mesh.periodic[1]:
            a[:, :, 0:h] = a[:, :, n1 : n1 + h]
            a[:, :, n1 + h : n1 + 2 * h] = a[:, :, h : 2 * h]

    def _extrapolate(self, a: np.ndarray, axis: int, side: int) -> None:
        h = _HALO
        n = self.shape[axis]
        ax = axis + 1  # stacked arrays carry the batch axis first

        def take(index: int) -> tuple:
            sel: list = [slice(None)] * a.ndim
            sel[ax] = index
            return tuple(sel)

        if side == -1:
            edge, inner = h, h + 1
            targets = range(h - 1, -1, -1)
        else:
            edge, inner = n + h - 1, n + h - 2
            targets = range(n + h, n + 2 * h)
        slope = a[take(edge)] - a[take(inner)]
        for g, target in enumerate(targets, start=1):
            a[take(target)] = a[take(edge)] + g * slope

    def _apply_position(self, z: np.ndarray) -> None:
        h = _HALO
        for axis in (0, 1):
            if self.mesh.periodic[axis]:
                n = self.shape[axis]
                period = self.mesh.extent[axis]
                sel: list = [slice(None), slice(None), slice(None)]
                sel[axis + 1] = slice(0, h)
                z[tuple(sel) + (axis,)] -= period
                sel[axis + 1] = slice(n + h, n + 2 * h)
                z[tuple(sel) + (axis,)] += period
            else:
                self._extrapolate(z, axis, -1)
                self._extrapolate(z, axis, +1)

    def _apply_field(self, a: np.ndarray) -> None:
        for axis in (0, 1):
            if not self.mesh.periodic[axis]:
                self._extrapolate(a, axis, -1)
                self._extrapolate(a, axis, +1)

    def _gather_state(self) -> None:
        with self.trace.phase("batch_halo"):
            self._wrap_halo(self._z)
            self._wrap_halo(self._w)
            self._apply_position(self._z)
            self._apply_field(self._w)

    def _gather_field(self, full: np.ndarray) -> None:
        with self.trace.phase("batch_halo"):
            self._wrap_halo(full)
            self._apply_field(full)

    # -- physics -----------------------------------------------------------

    def _spectral_velocity(self, w_own: np.ndarray) -> np.ndarray:
        bk = self.backend
        with self.trace.phase("batch_fft"):
            data1 = np.ascontiguousarray(w_own[..., 0], dtype=np.complex128)
            data2 = np.ascontiguousarray(w_own[..., 1], dtype=np.complex128)
            g1_hat = bk.fft1d_batched(bk.fft1d_batched(data1, 1), 0)
            g2_hat = bk.fft1d_batched(bk.fft1d_batched(data2, 1), 0)
            w3_hat = bk.riesz_w3hat_batched(g1_hat, g2_hat, self._kx, self._ky)
            w3 = np.real(
                bk.ifft1d_batched(bk.ifft1d_batched(w3_hat, 0), 1)
            )
        out = np.zeros(w3.shape + (3,))
        out[..., 2] = w3
        return out

    def _br_velocity(self, z_own: np.ndarray, omega: np.ndarray) -> np.ndarray:
        nb = z_own.shape[0]
        targets = np.ascontiguousarray(z_own.reshape(nb, -1, 3))
        om = np.ascontiguousarray(omega.reshape(nb, -1, 3))
        out = np.zeros_like(targets)
        pref = np.full(nb, self._prefactor)
        with self.trace.phase("batch_br"):
            t0 = self.trace.clock()
            for sx, sy in self._shifts:
                sources = targets
                if sx or sy:
                    sources = targets + np.array([sx, sy, 0.0])
                self.backend.br_allpairs_batched(
                    targets, sources, om, self._eps2, pref, out,
                    symmetric=(not sx and not sy),
                )
            pairs = float(nb) * float(targets.shape[1]) ** 2 * len(self._shifts)
            self.trace.record_compute(
                "br_allpairs", 0,
                flops=PAIR_FLOPS * pairs, bytes_moved=_PAIR_BYTES * pairs,
                items=int(pairs), t_wall=self.trace.clock_since(t0),
            )
        return out.reshape(z_own.shape)

    def _derivatives(self) -> tuple[np.ndarray, np.ndarray]:
        """Batched replay of ``ZModel.compute_derivatives`` for the fleet."""
        bk = self.backend
        h = _HALO
        n0, n1 = self.shape
        self._gather_state()
        z_full, w_full = self._z, self._w
        z_own = self._owned(z_full)
        w_own = self._owned(w_full)
        with self.trace.phase("batch_stencil"):
            t1 = bk.stencil_dx_batched(z_full, self._dx)
            t2 = bk.stencil_dy_batched(z_full, self._dy)
            normal = ops.cross(t1, t2)
            deth = ops.area_element(normal)
            omega = w_own[..., 0:1] * t1 + w_own[..., 1:2] * t2

        w_fft = self._spectral_velocity(w_own) if self._need_fft else None
        w_br = self._br_velocity(z_own, omega) if self._need_br else None
        w_total = w_br if self._need_br else w_fft
        w_phi = w_fft if self._need_fft else w_br

        g = self._gravity.reshape(-1, 1, 1)
        half_bern = (0.5 * self._bernoulli).reshape(-1, 1, 1)
        phi_own = g * z_own[..., 2] - half_bern * ops.dot(w_phi, w_phi)
        phi_full = np.zeros((z_full.shape[0],) + self._full_shape + (1,))
        phi_full[:, h : h + n0, h : h + n1, 0] = phi_own
        self._gather_field(phi_full)

        with self.trace.phase("batch_stencil"):
            dphi1 = bk.stencil_dx_batched(phi_full, self._dx)[..., 0]
            dphi2 = bk.stencil_dy_batched(phi_full, self._dy)[..., 0]
            at = (2.0 * self._atwood).reshape(-1, 1, 1)
            wdot = np.empty_like(w_own)
            wdot[..., 0] = at * dphi2 / deth
            wdot[..., 1] = -at * dphi1 / deth
            if np.any(self._mu != 0.0):
                mu = self._mu.reshape(-1, 1, 1)
                wdot[..., 0] += mu * bk.stencil_laplacian_batched(
                    w_full[..., 0], self._dx, self._dy
                )
                wdot[..., 1] += mu * bk.stencil_laplacian_batched(
                    w_full[..., 1], self._dx, self._dy
                )
        return np.ascontiguousarray(w_total), wdot

    # -- time stepping -----------------------------------------------------

    def step(self) -> None:
        """Advance every active scenario one TVD-RK3 step in lockstep."""
        if self.size == 0:
            raise ConfigurationError("cannot step an empty fleet")
        bk = self.backend
        z_own = self._owned(self._z)
        w_own = self._owned(self._w)
        z0 = z_own.copy()
        w0 = w_own.copy()
        for au, a0, adu in _STAGE_COEFFS:
            zdot, wdot = self._derivatives()
            with self.trace.phase("batch_integrate"):
                coeff = adu * self._dt
                bk.rk3_axpy_batched(z_own, z_own, au, z0, a0, zdot, coeff)
                bk.rk3_axpy_batched(w_own, w_own, au, w0, a0, wdot, coeff)
        self._steps_done += 1
        self._time += self._dt
        self.fleet_steps += 1
        self.metrics.counter("batch.steps").inc()
        self.metrics.counter("batch.scenario_steps").inc(self.size)

    def _finish_ready(
        self, on_finish: Optional[Callable[[int, dict], None]] = None
    ) -> list[int]:
        """Record results for scenarios at target and compact them out."""
        done = np.nonzero(self._steps_done >= self._steps_target)[0]
        if done.size == 0:
            return []
        h = _HALO
        n0, n1 = self.shape
        finished: list[int] = []
        for b in done:
            sid = self._ids[int(b)]
            result: dict = {"diagnostics": self._diag_at(int(b))}
            if self.retain_state:
                result["z"] = self._z[b, h : h + n0, h : h + n1, :].copy()
                result["w"] = self._w[b, h : h + n0, h : h + n1, :].copy()
            self.results[sid] = result
            finished.append(sid)
        keep = np.ones(self.size, dtype=bool)
        keep[done] = False
        self._compact(keep)
        self.metrics.counter("batch.scenarios_completed").inc(len(finished))
        self.metrics.gauge("batch.scenarios_active").set(float(self.size))
        if on_finish is not None:
            for sid in finished:
                on_finish(sid, self.results[sid])
        return finished

    def run(
        self, on_finish: Optional[Callable[[int, dict], None]] = None
    ) -> dict[int, dict]:
        """Step until every scenario reaches its target; return results.

        Completed scenarios compact out of the batch as soon as they
        finish — a 100-step straggler never pays for 5-step neighbours.
        ``on_finish(scenario_id, result)`` fires at each completion,
        letting callers stream results (the campaign fast path records
        store entries from it).
        """
        self._finish_ready(on_finish)
        while self.size:
            self.step()
            self._finish_ready(on_finish)
        return self.results
