"""Layout redistribution (the communication heart of the distributed FFT).

A :class:`Remap` moves a global 2D array from one layout (one box per
rank) to another.  Each rank intersects its source box with every
destination box to find what it must send, and every source box with
its own destination box to find what it will receive.  How the pieces
travel is governed by :class:`~repro.fft.config.FftConfig`:

* ``alltoall=True`` — one ``exchange_arrays`` collective (recorded as an
  ``alltoallv`` with per-peer byte counts, exactly how heFFTe invokes
  ``MPI_Alltoallv``);
* ``alltoall=False`` — a mesh of ``Isend``/``Recv`` pairs, heFFTe's
  "custom communication" path;
* ``reorder=True`` — each peer's pieces are packed into one contiguous
  buffer (one message per peer, plus a local pack/unpack pass);
* ``reorder=False`` — in point-to-point mode, each naturally contiguous
  row-run of the intersection is sent as its own (smaller) message; in
  collective mode the wire volume is unchanged but the local copies are
  strided (recorded as ``fft_strided`` compute events, which the
  machine model costs at reduced bandwidth).

The functional result is identical for all configurations (tested);
only the communication/computation *structure* differs — which is
precisely what the paper's Figure 9 experiment measures.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.fft.config import FftConfig
from repro.grid.indexspace import IndexSpace
from repro.mpi.comm import Comm
from repro.util.errors import ConfigurationError

__all__ = ["Remap"]


class Remap:
    """A reusable redistribution plan between two layouts."""

    def __init__(
        self,
        comm: Comm,
        src_boxes: Sequence[IndexSpace],
        dst_boxes: Sequence[IndexSpace],
        config: FftConfig,
        tag_base: int,
        label: str = "remap",
    ) -> None:
        if len(src_boxes) != comm.size or len(dst_boxes) != comm.size:
            raise ConfigurationError(
                "layouts must provide exactly one box per rank"
            )
        self.comm = comm
        self.config = config
        self.tag_base = tag_base
        self.label = label
        self.src_box = src_boxes[comm.rank]
        self.dst_box = dst_boxes[comm.rank]
        # What I send to each destination rank (global-index boxes).
        self.send_parts: list[Optional[IndexSpace]] = [
            self.src_box.intersect(dst_boxes[d]) for d in range(comm.size)
        ]
        # What I receive from each source rank.
        self.recv_parts: list[Optional[IndexSpace]] = [
            src_boxes[s].intersect(self.dst_box) for s in range(comm.size)
        ]

    # -- helpers --------------------------------------------------------------

    def _extract(self, local: np.ndarray, part: IndexSpace) -> np.ndarray:
        """Copy the piece ``part`` (global box) out of my source array."""
        rel = part.relative_to(self.src_box.mins)
        return np.ascontiguousarray(local[rel.slices()])

    def _place(self, out: np.ndarray, part: IndexSpace, data: np.ndarray) -> None:
        rel = part.relative_to(self.dst_box.mins)
        out[rel.slices()] = data.reshape(part.shape)

    def _record_copy(self, nbytes: int, packed: bool) -> None:
        kernel = "fft_pack" if packed else "fft_strided"
        self.comm.trace.record_compute(
            kernel, self.comm.rank, flops=0.0, bytes_moved=2.0 * nbytes
        )

    # -- application --------------------------------------------------------------

    def apply(self, local: np.ndarray) -> np.ndarray:
        """Redistribute ``local`` (my source box) into my destination box."""
        if tuple(local.shape) != self.src_box.shape:
            raise ConfigurationError(
                f"{self.label}: input shape {local.shape} != source box "
                f"{self.src_box.shape}"
            )
        out = np.empty(self.dst_box.shape, dtype=local.dtype)
        if self.config.alltoall:
            self._apply_collective(local, out)
        else:
            self._apply_p2p(local, out)
        return out

    def _apply_collective(self, local: np.ndarray, out: np.ndarray) -> None:
        per_dest: list[Optional[np.ndarray]] = []
        for dest in range(self.comm.size):
            part = self.send_parts[dest]
            if part is None or part.empty:
                per_dest.append(None)
                continue
            piece = self._extract(local, part)
            self._record_copy(piece.nbytes, packed=self.config.reorder)
            per_dest.append(piece.ravel())
        received = self.comm.exchange_arrays(per_dest)
        for src in range(self.comm.size):
            part = self.recv_parts[src]
            if part is None or part.empty:
                continue
            data = received[src]
            self._record_copy(data.nbytes, packed=self.config.reorder)
            self._place(out, part, data.astype(local.dtype, copy=False))

    def _apply_p2p(self, local: np.ndarray, out: np.ndarray) -> None:
        comm = self.comm
        rank = comm.rank
        # Self-copy avoids the mailbox entirely, like a real MPI shortcut.
        self_part = self.send_parts[rank]
        if self_part is not None and not self_part.empty:
            self._place(out, self_part, self._extract(local, self_part))
        # Post all sends (buffered), starting after self to stagger peers.
        for shift in range(1, comm.size):
            dest = (rank + shift) % comm.size
            part = self.send_parts[dest]
            if part is None or part.empty:
                continue
            piece = self._extract(local, part)
            if self.config.reorder:
                self._record_copy(piece.nbytes, packed=True)
                comm.Isend(piece.ravel(), dest, self.tag_base)
            else:
                # One message per contiguous row-run of the intersection.
                for row in piece:
                    comm.Isend(np.ascontiguousarray(row), dest, self.tag_base)
        # Receive from every peer that owes me a piece.
        for shift in range(1, comm.size):
            src = (rank - shift) % comm.size
            part = self.recv_parts[src]
            if part is None or part.empty:
                continue
            if self.config.reorder:
                data = comm.Recv(None, src, self.tag_base)
                self._record_copy(data.nbytes, packed=True)
                self._place(out, part, data.astype(local.dtype, copy=False))
            else:
                rows = []
                for _ in range(part.shape[0]):
                    rows.append(comm.Recv(None, src, self.tag_base))
                data = np.stack(rows)
                self._record_copy(data.nbytes, packed=False)
                self._place(out, part, data.astype(local.dtype, copy=False))

    # -- introspection (used by tests and the machine patterns) ----------------

    def send_counts_bytes(self, itemsize: int) -> list[int]:
        """Bytes this rank ships to each destination (itemsize given)."""
        return [
            0 if part is None else part.size * itemsize
            for part in self.send_parts
        ]

    def partner_count(self) -> int:
        """Number of distinct remote peers this rank exchanges data with."""
        partners = set()
        for d, part in enumerate(self.send_parts):
            if d != self.comm.rank and part is not None and not part.empty:
                partners.add(d)
        for s, part in enumerate(self.recv_parts):
            if s != self.comm.rank and part is not None and not part.empty:
                partners.add(s)
        return len(partners)
