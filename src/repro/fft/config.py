"""FFT communication configuration (heFFTe's three tuning flags).

The paper's Table 1 enumerates the eight combinations of heFFTe's
``AllToAll``, ``Pencils`` and ``Reorder`` parameters; Figure 9 weak-scales
the low-order solver over all of them.  :class:`FftConfig` reproduces
those flags with the same numbering:

=============  ========  =======  =======
Configuration  AllToAll  Pencils  Reorder
=============  ========  =======  =======
0              False     False    False
1              False     False    True
2              False     True     False
3              False     True     True
4              True      False    False
5              True      False    True
6              True      True     False
7              True      True     True
=============  ========  =======  =======

Meaning in this implementation (see :mod:`repro.fft.remap`):

* ``alltoall`` — redistributions use the ``Alltoallv``-style collective
  (True) or a mesh of point-to-point ``Isend``/``Recv`` (False).
* ``pencils`` — intermediate layouts are pencils within row/column
  sub-communicators (True: the brick↔pencil hops stay inside a
  sub-communicator of ~√P ranks) or global slabs (False: every hop is a
  global exchange over all P ranks).
* ``reorder`` — pack each peer's data into one contiguous buffer before
  sending (True: one message per peer plus local pack work) or send the
  naturally contiguous row-runs as-is (False: more, smaller messages,
  no pack pass).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FftConfig", "ALL_CONFIGS"]


@dataclass(frozen=True)
class FftConfig:
    """heFFTe-style communication flags for the distributed FFT."""

    alltoall: bool = True
    pencils: bool = True
    reorder: bool = True

    @property
    def index(self) -> int:
        """Table 1 configuration number (0-7)."""
        return (int(self.alltoall) << 2) | (int(self.pencils) << 1) | int(self.reorder)

    @classmethod
    def from_index(cls, index: int) -> "FftConfig":
        if not 0 <= index <= 7:
            raise ValueError(f"configuration index must be 0-7, got {index}")
        return cls(
            alltoall=bool(index & 4),
            pencils=bool(index & 2),
            reorder=bool(index & 1),
        )

    def __str__(self) -> str:
        return (
            f"config {self.index} (AllToAll={self.alltoall}, "
            f"Pencils={self.pencils}, Reorder={self.reorder})"
        )


ALL_CONFIGS: tuple[FftConfig, ...] = tuple(
    FftConfig.from_index(i) for i in range(8)
)
