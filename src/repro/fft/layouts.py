"""Data layouts used by the distributed FFT pipeline.

A *layout* assigns every rank a rectangular box of the global
``N1 × N2`` array.  The FFT pipeline hops through three layouts:

``brick``  →  *rows layout* (each rank owns complete rows; FFT along
axis 1)  →  *cols layout* (complete columns; FFT along axis 0)  →
``brick``.

Two families of intermediate layouts exist, selected by the ``pencils``
flag (:class:`repro.fft.config.FftConfig`):

* **Global slabs** (``pencils=False``): rows/columns are split over all
  ``P`` ranks linearly — every redistribution is a global exchange.
* **Pencils** (``pencils=True``): rank ``(cx, cy)`` keeps axis-0 rows
  within its own block-row ``cx`` (sub-split by ``cy``), so the
  brick↔pencil hops move data only inside the ``Py``-rank row
  sub-communicator (resp. ``Px``-rank column sub-communicator) —
  the locality heFFTe's pencil mode buys.

Every function returns one :class:`~repro.grid.indexspace.IndexSpace`
per rank, indexed by linear Cartesian rank (row-major over ``dims``),
and together the boxes exactly tile the global array (tested).
"""

from __future__ import annotations

from repro.grid.indexspace import IndexSpace
from repro.util.misc import prod, split_extent

__all__ = [
    "brick_layout",
    "rows_slab_layout",
    "cols_slab_layout",
    "rows_pencil_layout",
    "cols_pencil_layout",
    "layout_for_stage",
]


def _linear(coords: tuple[int, int], dims: tuple[int, int]) -> int:
    return coords[0] * dims[1] + coords[1]


def brick_layout(
    shape: tuple[int, int], dims: tuple[int, int]
) -> list[IndexSpace]:
    """The native 2D block decomposition (one brick per rank)."""
    boxes: list[IndexSpace] = []
    for cx in range(dims[0]):
        for cy in range(dims[1]):
            r0 = split_extent(shape[0], dims[0], cx)
            r1 = split_extent(shape[1], dims[1], cy)
            boxes.append(IndexSpace.from_ranges([r0, r1]))
    return boxes


def rows_slab_layout(
    shape: tuple[int, int], dims: tuple[int, int]
) -> list[IndexSpace]:
    """Complete rows, split linearly over all P ranks."""
    nranks = prod(dims)
    return [
        IndexSpace.from_ranges(
            [split_extent(shape[0], nranks, r), (0, shape[1])]
        )
        for r in range(nranks)
    ]


def cols_slab_layout(
    shape: tuple[int, int], dims: tuple[int, int]
) -> list[IndexSpace]:
    """Complete columns, split linearly over all P ranks."""
    nranks = prod(dims)
    return [
        IndexSpace.from_ranges(
            [(0, shape[0]), split_extent(shape[1], nranks, r)]
        )
        for r in range(nranks)
    ]


def rows_pencil_layout(
    shape: tuple[int, int], dims: tuple[int, int]
) -> list[IndexSpace]:
    """Complete rows; each rank keeps rows inside its own block-row.

    Rank ``(cx, cy)`` owns the ``cy``-th sub-split of block-row ``cx``'s
    row range, over all columns.  Brick→rows_pencil therefore only moves
    data between ranks sharing ``cx`` (the row sub-communicator).
    """
    boxes: list[IndexSpace] = []
    for cx in range(dims[0]):
        lo, hi = split_extent(shape[0], dims[0], cx)
        for cy in range(dims[1]):
            sub = split_extent(hi - lo, dims[1], cy)
            boxes.append(
                IndexSpace.from_ranges([(lo + sub[0], lo + sub[1]), (0, shape[1])])
            )
    return boxes


def cols_pencil_layout(
    shape: tuple[int, int], dims: tuple[int, int]
) -> list[IndexSpace]:
    """Complete columns; each rank keeps columns inside its block-column."""
    boxes: list[IndexSpace] = [IndexSpace.from_shape((0, 0))] * prod(dims)
    for cy in range(dims[1]):
        lo, hi = split_extent(shape[1], dims[1], cy)
        for cx in range(dims[0]):
            sub = split_extent(hi - lo, dims[0], cx)
            boxes[_linear((cx, cy), dims)] = IndexSpace.from_ranges(
                [(0, shape[0]), (lo + sub[0], lo + sub[1])]
            )
    return boxes


def layout_for_stage(
    stage: str, shape: tuple[int, int], dims: tuple[int, int], pencils: bool
) -> list[IndexSpace]:
    """Layout boxes for a named pipeline stage.

    ``stage`` is one of ``brick``, ``rows``, ``cols``.
    """
    if stage == "brick":
        return brick_layout(shape, dims)
    if stage == "rows":
        return rows_pencil_layout(shape, dims) if pencils else rows_slab_layout(shape, dims)
    if stage == "cols":
        return cols_pencil_layout(shape, dims) if pencils else cols_slab_layout(shape, dims)
    raise ValueError(f"unknown FFT stage {stage!r}")
