"""Serial FFT kernels and cost accounting.

Thin wrappers over ``numpy.fft`` that (a) pin the transform conventions
used across the library and (b) record roofline compute events so the
machine model can cost the local transform work of each distributed
stage.  A radix-2 style operation count of ``5 N log2 N`` flops per
length-``N`` 1D complex transform is the standard estimate (Cooley-
Tukey), which is all the scaling model needs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fft_along", "ifft_along", "fft2_serial", "ifft2_serial", "fft_flops"]


def fft_flops(n: int, batch: int) -> float:
    """Estimated flops for ``batch`` complex 1D FFTs of length ``n``."""
    if n <= 1:
        return 0.0
    return 5.0 * n * np.log2(n) * batch


def fft_along(data: np.ndarray, axis: int, trace=None, rank: int = 0) -> np.ndarray:
    """Complex forward FFT along one axis (norm='backward')."""
    out = np.fft.fft(data, axis=axis)
    if trace is not None:
        n = data.shape[axis]
        batch = data.size // max(n, 1)
        trace.record_compute(
            "fft1d", rank,
            flops=fft_flops(n, batch),
            bytes_moved=2.0 * out.nbytes,
            items=data.size,
        )
    return out


def ifft_along(data: np.ndarray, axis: int, trace=None, rank: int = 0) -> np.ndarray:
    """Complex inverse FFT along one axis (norm='backward': scales 1/N)."""
    out = np.fft.ifft(data, axis=axis)
    if trace is not None:
        n = data.shape[axis]
        batch = data.size // max(n, 1)
        trace.record_compute(
            "ifft1d", rank,
            flops=fft_flops(n, batch),
            bytes_moved=2.0 * out.nbytes,
            items=data.size,
        )
    return out


def fft2_serial(data: np.ndarray) -> np.ndarray:
    """Reference serial 2D transform (tests compare against this)."""
    return np.fft.fft2(data)


def ifft2_serial(data: np.ndarray) -> np.ndarray:
    return np.fft.ifft2(data)
