"""Serial FFT stage kernels and cost accounting.

The accounting layer over the 1D transform stages of the distributed
FFT: the actual transform is delegated to the selected compute backend
(:mod:`repro.backend`; the reference calls ``numpy.fft``), while this
module pins the transform conventions and records the roofline compute
events so the machine model can cost the local work of each stage
identically no matter which backend ran.  A radix-2 style operation
count of ``5 N log2 N`` flops per length-``N`` 1D complex transform is
the standard estimate (Cooley-Tukey), which is all the scaling model
needs.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, get_backend

__all__ = ["fft_along", "ifft_along", "fft2_serial", "ifft2_serial", "fft_flops"]


def fft_flops(n: int, batch: int) -> float:
    """Estimated flops for ``batch`` complex 1D FFTs of length ``n``."""
    if n <= 1:
        return 0.0
    return 5.0 * n * np.log2(n) * batch


def fft_along(
    data: np.ndarray,
    axis: int,
    trace=None,
    rank: int = 0,
    backend: "ArrayBackend | str | None" = None,
) -> np.ndarray:
    """Complex forward FFT along one axis (norm='backward')."""
    t0 = trace.clock() if trace is not None else None
    out = get_backend(backend).fft1d(data, axis)
    if trace is not None:
        n = data.shape[axis]
        batch = data.size // max(n, 1)
        trace.record_compute(
            "fft1d", rank,
            flops=fft_flops(n, batch),
            bytes_moved=2.0 * out.nbytes,
            items=data.size, t_wall=trace.clock_since(t0),
        )
    return out


def ifft_along(
    data: np.ndarray,
    axis: int,
    trace=None,
    rank: int = 0,
    backend: "ArrayBackend | str | None" = None,
) -> np.ndarray:
    """Complex inverse FFT along one axis (norm='backward': scales 1/N)."""
    t0 = trace.clock() if trace is not None else None
    out = get_backend(backend).ifft1d(data, axis)
    if trace is not None:
        n = data.shape[axis]
        batch = data.size // max(n, 1)
        trace.record_compute(
            "ifft1d", rank,
            flops=fft_flops(n, batch),
            bytes_moved=2.0 * out.nbytes,
            items=data.size, t_wall=trace.clock_since(t0),
        )
    return out


def fft2_serial(data: np.ndarray) -> np.ndarray:
    """Reference serial 2D transform (tests compare against this)."""
    return np.fft.fft2(data)


def ifft2_serial(data: np.ndarray) -> np.ndarray:
    return np.fft.ifft2(data)
