"""Distributed 2D FFT over the brick decomposition (heFFTe analogue).

The transform pipeline is::

    brick --remap--> rows layout --FFT axis 1--> rows layout
          --remap--> cols layout --FFT axis 0--> cols layout
          --remap--> brick

Forward and backward share the remap plans (backward runs them in
reverse with inverse kernels).  The intermediate layouts and the
communication backend are chosen by :class:`~repro.fft.config.FftConfig`
— the eight combinations of the paper's Table 1.

Data enters and leaves in the rank's *brick* box (owned nodes of the
2D block decomposition, no ghosts), which is how Beatnik's low-order
ZModel solver consumes it.
"""

from __future__ import annotations

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.fft.config import FftConfig
from repro.fft.layouts import layout_for_stage
from repro.fft.remap import Remap
from repro.fft.serial import fft_along, ifft_along
from repro.grid.indexspace import IndexSpace
from repro.mpi.cart import CartComm
from repro.util.errors import ConfigurationError

__all__ = ["DistributedFFT2D"]

_FFT_TAGS = 7500


class DistributedFFT2D:
    """A reusable distributed-transform plan bound to a Cartesian comm."""

    def __init__(
        self,
        cart: CartComm,
        global_shape: tuple[int, int],
        config: FftConfig = FftConfig(),
        backend: "ArrayBackend | str | None" = None,
    ) -> None:
        if cart.ndims != 2:
            raise ConfigurationError("DistributedFFT2D requires a 2D CartComm")
        self.cart = cart
        self.global_shape = (int(global_shape[0]), int(global_shape[1]))
        self.config = config
        self.backend = get_backend(backend)

        dims = cart.dims
        shape = self.global_shape
        bricks = layout_for_stage("brick", shape, dims, config.pencils)
        rows = layout_for_stage("rows", shape, dims, config.pencils)
        cols = layout_for_stage("cols", shape, dims, config.pencils)
        self.brick_box: IndexSpace = bricks[cart.rank]
        self._rows_box: IndexSpace = rows[cart.rank]
        self._cols_box: IndexSpace = cols[cart.rank]

        base = _FFT_TAGS + 64 * config.index
        self._to_rows = Remap(cart, bricks, rows, config, base + 0, "brick→rows")
        self._rows_to_cols = Remap(cart, rows, cols, config, base + 16, "rows→cols")
        self._cols_to_brick = Remap(cart, cols, bricks, config, base + 32, "cols→brick")
        # Backward runs the same hops mirrored.
        self._brick_to_cols = Remap(cart, bricks, cols, config, base + 48, "brick→cols")
        self._cols_to_rows = Remap(cart, cols, rows, config, base + 52, "cols→rows")
        self._rows_to_brick = Remap(cart, rows, bricks, config, base + 56, "rows→brick")

    # -- transforms ------------------------------------------------------------

    def forward(self, local: np.ndarray) -> np.ndarray:
        """Forward complex 2D FFT of the global array; brick in, brick out.

        ``local`` is this rank's brick of real or complex data; the
        return value is this rank's brick of the (unnormalized,
        ``norm='backward'``) global spectrum.
        """
        data = np.ascontiguousarray(local, dtype=np.complex128)
        if tuple(data.shape) != self.brick_box.shape:
            raise ConfigurationError(
                f"forward input shape {data.shape} != brick {self.brick_box.shape}"
            )
        trace, rank = self.cart.trace, self.cart.rank
        work = self._to_rows.apply(data)
        work = fft_along(work, axis=1, trace=trace, rank=rank,
                         backend=self.backend)
        work = self._rows_to_cols.apply(work)
        work = fft_along(work, axis=0, trace=trace, rank=rank,
                         backend=self.backend)
        return self._cols_to_brick.apply(work)

    def backward(self, local: np.ndarray) -> np.ndarray:
        """Inverse complex 2D FFT (scales by 1/(N1·N2)); brick in/out."""
        data = np.ascontiguousarray(local, dtype=np.complex128)
        if tuple(data.shape) != self.brick_box.shape:
            raise ConfigurationError(
                f"backward input shape {data.shape} != brick {self.brick_box.shape}"
            )
        trace, rank = self.cart.trace, self.cart.rank
        work = self._brick_to_cols.apply(data)
        work = ifft_along(work, axis=0, trace=trace, rank=rank,
                          backend=self.backend)
        work = self._cols_to_rows.apply(work)
        work = ifft_along(work, axis=1, trace=trace, rank=rank,
                          backend=self.backend)
        return self._rows_to_brick.apply(work)

    def backward_real(self, local: np.ndarray) -> np.ndarray:
        """Inverse transform returning the real part (solver convenience)."""
        return np.real(self.backward(local))

    # -- spectral coordinates ------------------------------------------------------

    def brick_wavenumbers(
        self, extent: tuple[float, float]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Angular wavenumbers (kx, ky meshgrid) for this rank's brick.

        ``extent`` is the physical domain size ``(Lx, Ly)``; wavenumbers
        follow the ``np.fft.fftfreq`` ordering of the global spectrum,
        sliced to the brick.
        """
        n1, n2 = self.global_shape
        kx = 2.0 * np.pi * np.fft.fftfreq(n1, d=extent[0] / n1)
        ky = 2.0 * np.pi * np.fft.fftfreq(n2, d=extent[1] / n2)
        box = self.brick_box
        return np.meshgrid(
            kx[box.mins[0]: box.maxs[0]],
            ky[box.mins[1]: box.maxs[1]],
            indexing="ij",
        )

    def remap_partner_counts(self) -> dict[str, int]:
        """Peers touched by each forward hop (tests assert pencil locality)."""
        return {
            "to_rows": self._to_rows.partner_count(),
            "rows_to_cols": self._rows_to_cols.partner_count(),
            "cols_to_brick": self._cols_to_brick.partner_count(),
        }
