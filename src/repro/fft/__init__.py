"""Distributed FFT substrate (the heFFTe analogue).

Provides a distributed 2D complex FFT over the surface mesh's brick
decomposition with heFFTe's three communication flags (``alltoall``,
``pencils``, ``reorder`` — paper Table 1).  The low-order ZModel solver
computes its spectral Birkhoff-Rott approximation with this package,
and the Fig. 9 benchmark sweeps all eight flag combinations.
"""

from repro.fft.config import ALL_CONFIGS, FftConfig
from repro.fft.dfft import DistributedFFT2D
from repro.fft.layouts import (
    brick_layout,
    cols_pencil_layout,
    cols_slab_layout,
    layout_for_stage,
    rows_pencil_layout,
    rows_slab_layout,
)
from repro.fft.remap import Remap
from repro.fft.serial import fft2_serial, fft_flops, ifft2_serial

__all__ = [
    "ALL_CONFIGS",
    "FftConfig",
    "DistributedFFT2D",
    "Remap",
    "brick_layout",
    "rows_slab_layout",
    "cols_slab_layout",
    "rows_pencil_layout",
    "cols_pencil_layout",
    "layout_for_stage",
    "fft2_serial",
    "ifft2_serial",
    "fft_flops",
]
