"""repro — a from-scratch Python reproduction of Beatnik (SC 2024).

Beatnik is a global-communication mini-application that simulates 3D
Rayleigh-Taylor interface instabilities with Pandya & Shkoller's Z-Model.
This package reimplements the full system in Python: the Z-Model solver
stack (:mod:`repro.core`), the structured-grid substrate
(:mod:`repro.grid`), a heFFTe-style distributed FFT (:mod:`repro.fft`),
an ArborX/CabanaPD-style particle layer (:mod:`repro.spatial`), a
Silo-style writer (:mod:`repro.io`), an in-process MPI simulator
(:mod:`repro.mpi`), pluggable compute backends for the dense hot paths
(:mod:`repro.backend`) and a machine performance model
(:mod:`repro.machine`) used by the benchmark harness to reproduce the
paper's 4-to-1024-GPU scaling studies.

Start with :class:`repro.core.Solver` (see ``examples/quickstart.py``) or
the ``rocketrig`` command-line driver (:mod:`repro.cli.rocketrig`).
"""

__version__ = "1.0.0"

__all__ = [
    "mpi", "machine", "grid", "fft", "spatial", "io", "core", "util",
    "backend",
]
