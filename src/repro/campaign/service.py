"""Campaign service: a job-queue coordinator and pull-based workers.

:class:`Coordinator` detaches campaign execution from a single process
tree.  It owns the run queue (deduplicated against the store, ordered
longest-job-first) and hands work to :class:`Worker`\\ s over the typed
message protocol of :mod:`repro.campaign.protocol` — workers *pull*
jobs (``job-request`` → ``new-job`` | ``no-work-left``), execute them
through the ordinary serial :class:`~repro.campaign.executor.CampaignExecutor`
path (so store records, telemetry artifacts and retry semantics are
identical to every other execution backend), and report ``job-done`` /
``job-failed``.  Because the store deduplicates by content hash, any
number of submitters can point decks at one coordinator and share
results.

Lease state machine (per run)::

                 job-request
    queued ───────────────────▶ leased ──── job-done ───▶ completed
      ▲    (claim marker with      │
      │     owner + deadline)      ├────── job-failed ──▶ failed
      │                            │
      └──────── lease expiry ◀─────┘ (no heartbeat within
         (requeued; max_requeues      lease_timeout)
          exhausted ▶ failed)

A lease is granted by appending a ``running`` claim marker to the store
with ``owner`` (the worker's identity) and ``lease_expires`` stamped —
the same marker the process-pool executor uses for crash attribution,
so a coordinator restart can tell a live claimant (future deadline,
heartbeats will renew it) from a dead one (lapsed deadline → requeue).
Workers renew their lease with ``heartbeat`` messages; a worker that
vanishes (SIGKILL, kernel fault, unplugged machine) simply stops
heartbeating and its run is reclaimed and requeued when the lease
lapses.  Worker disconnection is deliberately *not* a requeue signal:
the lease clock is the only authority, so the socket transport and the
in-process simulated-MPI transport recover identically.

The coordinator streams live progress the same way the executor does —
``status.json`` in the campaign root via (a subclass of) the executor's
status board, extended with a ``service`` section (workers, leases,
bound address) — and exposes ``campaign.service.*`` metrics: jobs
leased, leases expired, workers seen, reconnects.  A ``service.json``
discovery file in the campaign root carries the bound address and PID
for workers and dashboards.
"""

from __future__ import annotations

import collections
import logging
import os
import socket as _socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.campaign.deck import RunSpec
from repro.campaign.executor import (
    DEFAULT_RUN_TIMEOUT,
    CampaignExecutor,
    RunOutcome,
    _maybe_trip_kill_fuse,
    _StatusBoard,
)
from repro.campaign.protocol import (
    ChannelClosedError,
    CoordinatorEndpoint,
    Heartbeat,
    JobDone,
    JobFailed,
    JobRequest,
    Message,
    NewJob,
    NoWorkLeft,
    ProtocolError,
    WorkerChannel,
)
from repro.campaign.scheduler import longest_job_first
from repro.campaign.store import CampaignStore
from repro.machine.model import LASSEN, MachineSpec
from repro.telemetry.artifacts import TELEMETRY_SCHEMA, atomic_write_json
from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "Coordinator",
    "Worker",
    "WorkerVanished",
    "Lease",
    "DEFAULT_LEASE_TIMEOUT",
    "service_info_path",
]

logger = logging.getLogger("repro.campaign")

#: Default wall-clock lease on a granted job: a worker silent for this
#: long is presumed dead and its run is reclaimed.  Heartbeats go out
#: every ``lease_timeout / 3``, so three misses kill a lease.
DEFAULT_LEASE_TIMEOUT = 60.0

#: A run whose lease expired more than this many times is recorded
#: failed instead of requeued forever (poison-job backstop).
DEFAULT_MAX_REQUEUES = 3


class WorkerVanished(Exception):
    """Test hook: raised inside a worker's run callable to simulate the
    worker dying silently mid-run (the in-process analogue of SIGKILL —
    heartbeats stop, nothing terminal is recorded, nothing is sent)."""


def service_info_path(store: CampaignStore) -> str:
    """Path of the coordinator's ``service.json`` discovery file."""
    return os.path.join(store.root, "service.json")


@dataclass
class Lease:
    """One granted job: who holds it and when it lapses."""

    spec: RunSpec
    worker: str
    conn_id: str
    granted: float
    deadline: float
    requeues: int = 0


class _ServiceStatusBoard(_StatusBoard):
    """The executor status board plus a live ``service`` section."""

    def snapshot(self) -> dict[str, Any]:
        snap = super().snapshot()
        snap["service"] = self._executor.service_snapshot()
        return snap


@dataclass
class _WorkerInfo:
    """Coordinator-side view of one worker identity."""

    conn_id: str
    first_seen: float
    last_seen: float
    jobs_done: int = 0
    jobs_failed: int = 0
    connections: int = 1


class Coordinator:
    """Owns a campaign's run queue and serves it to pull-based workers.

    Duck-types the executor interface the status board expects
    (``store`` / ``machine`` / ``max_workers`` / ``worker_type`` /
    ``metrics`` / ``log``), so the live ``status.json`` document has
    the exact shape external tools already poll — with ``worker_type``
    reading ``"service"`` and ``max_workers`` tracking the number of
    distinct workers seen.

    ``journal=True`` appends every non-heartbeat message the
    coordinator receives or sends to :attr:`journal` as
    ``(direction, conn_id, message)`` tuples — the protocol-conformance
    tests compare these across transports.
    """

    worker_type = "service"

    def __init__(
        self,
        store: CampaignStore,
        specs: Sequence[RunSpec],
        endpoint: CoordinatorEndpoint,
        *,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_requeues: int = DEFAULT_MAX_REQUEUES,
        run_timeout: float = DEFAULT_RUN_TIMEOUT,
        collective_timeout: Optional[float] = None,
        machine: MachineSpec = LASSEN,
        status_interval: float = 0.0,
        poll_interval: float = 0.05,
        drain_grace: float = 5.0,
        journal: bool = False,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.store = store
        self.endpoint = endpoint
        self.lease_timeout = float(lease_timeout)
        self.max_requeues = int(max_requeues)
        self.run_timeout = float(run_timeout)
        self.collective_timeout = (
            collective_timeout if collective_timeout is not None
            else (run_timeout if run_timeout > 0 else DEFAULT_RUN_TIMEOUT)
        )
        self.machine = machine
        self.status_interval = float(status_interval)
        self.poll_interval = float(poll_interval)
        self.drain_grace = float(drain_grace)
        self.metrics = MetricsRegistry()
        self.journal: Optional[list[tuple[str, str, Message]]] = (
            [] if journal else None
        )
        self._log = log

        self._state_lock = threading.Lock()
        self._workers: dict[str, _WorkerInfo] = {}
        self._leases: dict[str, Lease] = {}
        self._requeue_counts: collections.Counter[str] = collections.Counter()
        self._parked: collections.deque[tuple[str, str]] = collections.deque()
        self._notified: set[str] = set()

        # Dedup within the batch and against the store, mirroring
        # CampaignExecutor.submit: completed hashes with a loadable
        # result are store hits and never hit the queue.
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.run_hash(), spec)
        self._specs = unique
        completed = store.completed_hashes()
        to_run: list[RunSpec] = []
        self._skipped: list[str] = []
        for run_hash, spec in unique.items():
            result = (
                store.load_result(run_hash) if run_hash in completed else None
            )
            if result is not None and self._hit_is_valid(spec, result):
                self._skipped.append(run_hash)
                self.metrics.counter("campaign.store_hits").inc()
            else:
                to_run.append(spec)
        # A previous coordinator's lapsed claims requeue transparently:
        # they are simply still in to_run (no terminal record), and the
        # fresh claim written at grant time supersedes the stale one.
        stale = set(store.expired_claims()) & {s.run_hash() for s in to_run}
        if stale:
            self.log(
                f"reclaiming {len(stale)} runs with lapsed leases from a "
                f"previous coordinator"
            )
        self._queue: collections.deque[RunSpec] = collections.deque(
            longest_job_first(to_run, self.machine)
        )
        self._pending: set[str] = {spec.run_hash() for spec in to_run}
        self._board = _ServiceStatusBoard(self, unique)
        for run_hash in self._skipped:
            self._board.mark(run_hash, "skipped")
        self._counts = {"completed": 0, "failed": 0, "requeued": 0}

    # -- executor duck-typing (status board host) ---------------------------

    @property
    def max_workers(self) -> int:
        with self._state_lock:
            return max(1, len(self._workers))

    def log(self, message: str) -> None:
        line = f"[campaign {self.store.campaign}] {message}"
        if self._log is not None:
            self._log(line)
        else:
            logger.info(line)

    def _hit_is_valid(self, spec: RunSpec, result: dict[str, Any]) -> bool:
        if spec.mode != "model":
            return True
        return result.get("machine") in (None, self.machine.name)

    # -- observability -------------------------------------------------------

    def service_snapshot(self) -> dict[str, Any]:
        """The ``service`` section of the status document."""
        now = time.time()
        with self._state_lock:
            workers = {
                name: {
                    "conn": info.conn_id,
                    "jobs_done": info.jobs_done,
                    "jobs_failed": info.jobs_failed,
                    "connections": info.connections,
                    "idle_seconds": now - info.last_seen,
                }
                for name, info in self._workers.items()
            }
            leases = {
                run_hash: {
                    "owner": lease.worker,
                    "expires_in": lease.deadline - now,
                    "requeues": lease.requeues,
                }
                for run_hash, lease in self._leases.items()
            }
        address = getattr(self.endpoint, "address", None)
        return {
            "address": f"{address[0]}:{address[1]}" if address else None,
            "lease_timeout": self.lease_timeout,
            "workers": workers,
            "leases": leases,
            "queued": len(self._queue),
        }

    def _write_service_info(self, *, done: bool = False) -> None:
        """Publish (atomically) the discovery file workers/tools poll."""
        address = getattr(self.endpoint, "address", None)
        info = {
            "schema": TELEMETRY_SCHEMA,
            "campaign": self.store.campaign,
            "pid": os.getpid(),
            "host": address[0] if address else None,
            "port": address[1] if address else None,
            "lease_timeout": self.lease_timeout,
            "done": done,
            "timestamp": time.time(),
        }
        try:
            os.makedirs(self.store.root, exist_ok=True)
            atomic_write_json(service_info_path(self.store), info)
        except OSError:  # pragma: no cover - advisory, like status.json
            pass

    def _journal_add(self, direction: str, conn_id: str, msg: Message) -> None:
        if self.journal is not None and not isinstance(msg, Heartbeat):
            self.journal.append((direction, conn_id, msg))

    # -- main loop -----------------------------------------------------------

    def serve(self) -> dict[str, Any]:
        """Serve the batch to workers until every run is terminal.

        Returns a summary dict (completed / failed / skipped /
        requeued counts plus the workers seen).  The campaign-level
        ``status.json`` is streamed throughout, and a final drain
        window hands ``no-work-left`` to every straggling worker so
        both transports shut down cleanly.
        """
        self._write_service_info()
        self._board.publish()
        heartbeat = self._board.start_heartbeat(self.status_interval)
        address = getattr(self.endpoint, "address", None)
        self.log(
            f"service: coordinating {len(self._pending)} runs "
            f"({len(self._skipped)} store hits)"
            + (f" on {address[0]}:{address[1]}" if address else "")
        )
        clean_exit = False
        try:
            while self._pending:
                self._sweep_leases()
                for conn_id, msg in self.endpoint.poll(self.poll_interval):
                    self._handle(conn_id, msg)
            clean_exit = True
        finally:
            try:
                self._drain()
            finally:
                self._board.stop_heartbeat(heartbeat)
                self._board.finalize(interrupted=not clean_exit)
                self._write_service_info(done=True)
                self.endpoint.close()
        summary = {
            "campaign": self.store.campaign,
            "completed": self._counts["completed"],
            "failed": self._counts["failed"],
            "skipped": len(self._skipped),
            "requeued": self._counts["requeued"],
            "workers": sorted(self._workers),
        }
        self.log(
            f"service: done — {summary['completed']} completed, "
            f"{summary['failed']} failed, {summary['skipped']} store hits, "
            f"{summary['requeued']} requeued, "
            f"{len(summary['workers'])} workers"
        )
        return summary

    def _drain(self) -> None:
        """Tell every waiting/lingering worker there is no work left.

        Parked requests are answered immediately; then the coordinator
        lingers up to ``drain_grace`` answering late ``job-request``\\ s
        (e.g. a worker that reported ``job-done`` and re-requested in
        the same instant the queue drained) until every known
        connection has been notified or dropped.
        """
        while self._parked:
            conn_id, worker = self._parked.popleft()
            self._send(conn_id, NoWorkLeft())
            self._notified.add(conn_id)
        deadline = time.monotonic() + self.drain_grace
        connections = getattr(self.endpoint, "connections", lambda: [])
        while time.monotonic() < deadline:
            waiting = set(connections()) - self._notified
            if not waiting:
                break
            for conn_id, msg in self.endpoint.poll(self.poll_interval):
                self._journal_add("recv", conn_id, msg)
                if isinstance(msg, JobRequest):
                    self._touch_worker(msg.worker, conn_id)
                    self._send(conn_id, NoWorkLeft())
                    self._notified.add(conn_id)

    def _send(self, conn_id: str, msg: Message) -> bool:
        delivered = self.endpoint.send(conn_id, msg)
        if delivered:
            self._journal_add("send", conn_id, msg)
        return delivered

    # -- message handling ----------------------------------------------------

    def _handle(self, conn_id: str, msg: Message) -> None:
        self._journal_add("recv", conn_id, msg)
        if isinstance(msg, JobRequest):
            self._touch_worker(msg.worker, conn_id)
            self._handle_job_request(conn_id, msg.worker)
        elif isinstance(msg, Heartbeat):
            self._touch_worker(msg.worker, conn_id)
            self._handle_heartbeat(msg)
        elif isinstance(msg, JobDone):
            self._touch_worker(msg.worker, conn_id)
            self._handle_done(msg)
        elif isinstance(msg, JobFailed):
            self._touch_worker(msg.worker, conn_id)
            self._handle_failed(msg)
        else:
            self.metrics.counter("campaign.service.unexpected_messages").inc()
            self.log(f"service: ignoring unexpected {msg.TYPE} from {conn_id}")

    def _touch_worker(self, worker: str, conn_id: str) -> None:
        now = time.time()
        with self._state_lock:
            info = self._workers.get(worker)
            if info is None:
                self._workers[worker] = _WorkerInfo(
                    conn_id=conn_id, first_seen=now, last_seen=now
                )
                self.metrics.counter("campaign.service.workers_seen").inc()
                self.log(f"service: worker {worker} connected ({conn_id})")
            else:
                if info.conn_id != conn_id:
                    info.conn_id = conn_id
                    info.connections += 1
                    self.metrics.counter("campaign.service.reconnects").inc()
                    self.log(
                        f"service: worker {worker} reconnected ({conn_id})"
                    )
                info.last_seen = now

    def _handle_job_request(self, conn_id: str, worker: str) -> None:
        if self._queue:
            self._grant(conn_id, worker)
        elif self._pending:
            # Work is still in flight: hold the request so an expired
            # lease can be regranted to this worker the moment it is
            # reclaimed (replying no-work-left here would strand the
            # reclaimed run with no workers to run it).
            self._parked.append((conn_id, worker))
        else:
            self._send(conn_id, NoWorkLeft())
            self._notified.add(conn_id)

    def _grant(self, conn_id: str, worker: str) -> None:
        spec = self._queue.popleft()
        run_hash = spec.run_hash()
        now = time.time()
        deadline = now + self.lease_timeout
        # The claim marker makes the lease durable: a coordinator that
        # restarts sees owner + lease_expires on the trailing running
        # record and can classify the claimant without guessing.
        self.store.record_running(spec, owner=worker, lease_expires=deadline)
        job = NewJob(
            run_hash=run_hash,
            payload=spec.payload(),
            campaign=self.store.campaign,
            store_root=self.store.base_root,
            lease_timeout=self.lease_timeout,
            timeout=self.run_timeout,
            collective_timeout=self.collective_timeout,
        )
        if not self._send(conn_id, job):
            # The connection died between request and grant; put the
            # run back — its stale claim is superseded at the regrant.
            self._queue.appendleft(spec)
            return
        with self._state_lock:
            self._leases[run_hash] = Lease(
                spec=spec,
                worker=worker,
                conn_id=conn_id,
                granted=now,
                deadline=deadline,
                requeues=self._requeue_counts[run_hash],
            )
        self.metrics.counter("campaign.service.jobs_leased").inc()
        self._board.mark(run_hash, "running")
        self.log(
            f"service: leased {run_hash} to {worker} "
            f"(deadline +{self.lease_timeout:g}s, {spec.describe()})"
        )

    def _handle_heartbeat(self, msg: Heartbeat) -> None:
        with self._state_lock:
            lease = self._leases.get(msg.run_hash)
            if lease is not None and lease.worker == msg.worker:
                lease.deadline = time.time() + self.lease_timeout
                renewed = True
            else:
                renewed = False
        self.metrics.counter("campaign.service.heartbeats").inc()
        if not renewed:
            self.metrics.counter("campaign.service.stale_messages").inc()

    def _release(self, msg: Any) -> Optional[Lease]:
        """Drop the lease a terminal report resolves (stale reports —
        e.g. from a worker whose lease already expired — return None
        and are counted, not trusted)."""
        with self._state_lock:
            lease = self._leases.get(msg.run_hash)
            if lease is not None and lease.worker == msg.worker:
                return self._leases.pop(msg.run_hash)
        self.metrics.counter("campaign.service.stale_messages").inc()
        return None

    def _handle_done(self, msg: JobDone) -> None:
        lease = self._release(msg)
        if lease is None and msg.run_hash not in self._pending:
            return
        self._pending.discard(msg.run_hash)
        self._counts["completed"] += 1
        self.metrics.counter("campaign.runs_completed").inc()
        self.metrics.histogram("campaign.run_elapsed").observe(msg.elapsed)
        with self._state_lock:
            info = self._workers.get(msg.worker)
            if info is not None:
                info.jobs_done += 1
        self._board.mark(msg.run_hash, "completed")
        self._board.publish()
        self.log(
            f"service: {msg.run_hash} completed by {msg.worker} "
            f"in {msg.elapsed:.2f}s"
        )

    def _handle_failed(self, msg: JobFailed) -> None:
        lease = self._release(msg)
        if lease is None and msg.run_hash not in self._pending:
            return
        self._pending.discard(msg.run_hash)
        self._counts["failed"] += 1
        self.metrics.counter("campaign.runs_failed").inc()
        with self._state_lock:
            info = self._workers.get(msg.worker)
            if info is not None:
                info.jobs_failed += 1
        self._board.mark(msg.run_hash, "failed")
        self._board.publish()
        self.log(
            f"service: {msg.run_hash} FAILED on {msg.worker}: "
            f"{msg.error.splitlines()[-1] if msg.error else 'unknown'}"
        )

    # -- lease expiry ---------------------------------------------------------

    def _sweep_leases(self) -> None:
        """Reclaim and requeue every lease whose deadline lapsed."""
        now = time.time()
        with self._state_lock:
            expired = [
                lease for lease in self._leases.values()
                if lease.deadline <= now
            ]
            for lease in expired:
                del self._leases[lease.spec.run_hash()]
        for lease in expired:
            run_hash = lease.spec.run_hash()
            self.metrics.counter("campaign.service.leases_expired").inc()
            self._requeue_counts[run_hash] += 1
            count = self._requeue_counts[run_hash]
            if count > self.max_requeues:
                error = (
                    f"lease expired {count} times (workers keep vanishing "
                    f"mid-run) — giving up on this run"
                )
                self.store.record_failed(lease.spec, error)
                self._pending.discard(run_hash)
                self._counts["failed"] += 1
                self.metrics.counter("campaign.runs_failed").inc()
                self._board.mark(run_hash, "failed")
                self.log(f"service: {run_hash} FAILED: {error}")
                continue
            self._counts["requeued"] += 1
            self._queue.appendleft(lease.spec)
            self._board.mark(run_hash, "queued")
            self.log(
                f"service: lease on {run_hash} (worker {lease.worker}) "
                f"expired after {self.lease_timeout:g}s — requeued "
                f"(attempt {count + 1})"
            )
        if expired:
            self._board.publish()
            # Regrant immediately to parked workers.
        while self._queue and self._parked:
            conn_id, worker = self._parked.popleft()
            self._grant(conn_id, worker)


class Worker:
    """Pull-based campaign worker: request, execute, report, repeat.

    Runs each :class:`NewJob` through a serial
    :class:`~repro.campaign.executor.CampaignExecutor` against the
    store named in the message, so terminal records, checkpoints and
    ``telemetry.json`` artifacts are byte-identical to every other
    execution path.  The worker records terminally *before* reporting
    ``job-done``/``job-failed`` — a lost report can cost a duplicate
    execution (the lease expires, the run requeues, the store's
    last-record-wins semantics absorb it) but never a lost result.

    A background thread heartbeats every ``lease_timeout / 3`` while a
    job is executing.  A coordinator that disappears mid-conversation
    (closed socket, aborted simulation) ends the loop cleanly: the
    in-flight job is finished and recorded first, so no store state is
    ever corrupted by a coordinator crash.

    ``run_one`` is a test hook replacing the executor call
    (``spec -> RunOutcome``); raising :class:`WorkerVanished` from it
    simulates a silent worker death (stop heartbeating, send nothing).
    """

    def __init__(
        self,
        channel: WorkerChannel,
        *,
        worker_id: Optional[str] = None,
        results_dir: Optional[str] = None,
        idle_timeout: float = 120.0,
        telemetry: bool = True,
        run_one: Optional[Callable[[RunSpec], RunOutcome]] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.channel = channel
        self.worker_id = worker_id or (
            f"{_socket.gethostname()}-{os.getpid()}"
        )
        #: Overrides the coordinator-supplied store root (single-host
        #: testing with divergent REPRO_RESULTS_DIR views).
        self.results_dir = results_dir
        self.idle_timeout = float(idle_timeout)
        self.telemetry = bool(telemetry)
        self._run_one = run_one
        self._log = log
        self.jobs_completed = 0
        self.jobs_failed = 0

    def log(self, message: str) -> None:
        line = f"[worker {self.worker_id}] {message}"
        if self._log is not None:
            self._log(line)
        else:
            logger.info(line)

    # -- job execution -------------------------------------------------------

    def _executor_for(self, job: NewJob) -> CampaignExecutor:
        store = CampaignStore(
            job.campaign, root=self.results_dir or job.store_root
        )
        return CampaignExecutor(
            store,
            max_workers=1,
            worker_type="serial",
            timeout=job.timeout or DEFAULT_RUN_TIMEOUT,
            collective_timeout=job.collective_timeout or None,
            telemetry=self.telemetry,
            log=lambda line: self.log(line),
        )

    def _start_heartbeat(self, run_hash: str, interval: float) -> threading.Event:
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    self.channel.send(
                        Heartbeat(worker=self.worker_id, run_hash=run_hash)
                    )
                except (ChannelClosedError, ProtocolError):
                    return  # coordinator gone; the main loop will notice

        threading.Thread(
            target=beat, name=f"heartbeat-{run_hash[:8]}", daemon=True
        ).start()
        return stop

    def _execute(self, job: NewJob) -> Optional[Message]:
        """Run one job; returns the report message (None = vanished)."""
        spec = RunSpec.from_payload(job.payload, campaign=job.campaign)
        run_hash = spec.run_hash()
        if run_hash != job.run_hash:
            # A coordinator whose hash does not match the payload it
            # shipped is confused; refuse rather than record under the
            # wrong content address.
            return JobFailed(
                worker=self.worker_id,
                run_hash=job.run_hash,
                error=(
                    f"payload hash mismatch: coordinator said "
                    f"{job.run_hash}, payload hashes to {run_hash}"
                ),
            )
        # Fault injection (tests): SIGKILL ourselves mid-claim, exactly
        # like the process-pool crash tests.
        _maybe_trip_kill_fuse(run_hash)
        interval = max(0.05, job.lease_timeout / 3.0)
        stop = self._start_heartbeat(run_hash, interval)
        try:
            if self._run_one is not None:
                outcome = self._run_one(spec)
            else:
                outcome = self._executor_for(job).run_one(spec)
        finally:
            stop.set()
        if outcome.status == "completed":
            self.jobs_completed += 1
            return JobDone(
                worker=self.worker_id,
                run_hash=run_hash,
                elapsed=outcome.elapsed,
                resumed_from_step=outcome.resumed_from_step,
            )
        self.jobs_failed += 1
        error = outcome.error or ""
        return JobFailed(
            worker=self.worker_id,
            run_hash=run_hash,
            error=error.strip().splitlines()[-1] if error.strip() else "",
            elapsed=outcome.elapsed,
        )

    # -- main loop -----------------------------------------------------------

    def run(self) -> dict[str, Any]:
        """Pull and execute jobs until ``no-work-left`` (or the
        coordinator disappears); returns a summary dict."""
        reason = "no-work-left"
        try:
            while True:
                self.channel.send(JobRequest(worker=self.worker_id))
                msg = self.channel.recv(self.idle_timeout)
                if msg is None:
                    reason = (
                        f"no reply within {self.idle_timeout:g}s — "
                        f"presuming the coordinator is gone"
                    )
                    break
                if isinstance(msg, NoWorkLeft):
                    break
                if not isinstance(msg, NewJob):
                    self.log(f"ignoring unexpected {msg.TYPE} message")
                    continue
                try:
                    report = self._execute(msg)
                except WorkerVanished:
                    # Simulated hard death: stop silently, exactly as a
                    # SIGKILLed process would — no report, no record.
                    return {
                        "worker": self.worker_id,
                        "completed": self.jobs_completed,
                        "failed": self.jobs_failed,
                        "reason": "vanished",
                    }
                if report is not None:
                    self.channel.send(report)
        except (ChannelClosedError, ProtocolError) as exc:
            # The coordinator hung up.  Any in-flight job was already
            # recorded terminally before we tried to report it, so
            # exiting here leaves the store fully consistent.
            reason = f"coordinator connection lost ({exc})"
        finally:
            self.channel.close()
        self.log(
            f"exiting: {reason} ({self.jobs_completed} completed, "
            f"{self.jobs_failed} failed)"
        )
        return {
            "worker": self.worker_id,
            "completed": self.jobs_completed,
            "failed": self.jobs_failed,
            "reason": reason,
        }
