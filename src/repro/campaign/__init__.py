"""Batch-run orchestration: decks → scheduled runs → persistent results.

The campaign subsystem is how this repo sweeps the paper's evaluation
space (order × BR solver × cutoff × mesh × rank count × heFFTe config)
without every benchmark hand-rolling its own loop:

* :mod:`repro.campaign.deck` — declarative sweep decks that expand into
  content-hashed :class:`RunSpec`\\ s.
* :mod:`repro.campaign.store` — persistent JSON-lines run store with
  content-addressed dedup under ``results/campaigns/``.
* :mod:`repro.campaign.scheduler` — machine-model cost estimates and
  longest-job-first dispatch order.
* :mod:`repro.campaign.executor` — concurrent execution on a pluggable
  worker backend (``thread`` / ``process`` / ``serial``) with failure
  isolation — including hard worker-process crashes — and
  checkpoint/resume of interrupted runs.
* :mod:`repro.campaign.report` — aggregation into the figure/table
  payloads the benchmark harness emits.
* :mod:`repro.campaign.protocol` — the typed coordinator/worker message
  codec and its transports (length-prefixed TCP frames, simulated MPI).
* :mod:`repro.campaign.service` — a long-running coordinator that
  leases queued runs to pull-based workers and reclaims the runs of
  workers that vanish (``rocketrig campaign --serve`` / ``--worker``).

Typical use::

    from repro.campaign import CampaignDeck, CampaignExecutor, CampaignStore

    deck = CampaignDeck.from_file("decks/fig9.json")
    store = CampaignStore(deck.name)
    outcomes = CampaignExecutor(store, max_workers=4).submit(deck.expand())
"""

from repro.campaign.deck import CampaignDeck, RunSpec
from repro.campaign.executor import (
    WORKER_TYPES,
    CampaignExecutor,
    RunOutcome,
    configure_logging,
    resolve_worker_type,
)
from repro.campaign.report import (
    campaign_summary,
    campaign_table,
    completed_records,
    format_table,
    record_field,
    series_grid,
)
from repro.campaign.scheduler import (
    estimate_cost,
    longest_job_first,
    makespan_estimate,
)
from repro.campaign.protocol import (
    ChannelClosedError,
    MpiEndpoint,
    MpiWorkerChannel,
    ProtocolError,
    SocketEndpoint,
    SocketWorkerChannel,
)
from repro.campaign.service import Coordinator, Worker, WorkerVanished
from repro.campaign.store import CampaignStore, RunRecord, results_root

__all__ = [
    "ChannelClosedError",
    "Coordinator",
    "MpiEndpoint",
    "MpiWorkerChannel",
    "ProtocolError",
    "SocketEndpoint",
    "SocketWorkerChannel",
    "Worker",
    "WorkerVanished",
    "CampaignDeck",
    "RunSpec",
    "CampaignExecutor",
    "RunOutcome",
    "WORKER_TYPES",
    "configure_logging",
    "resolve_worker_type",
    "CampaignStore",
    "RunRecord",
    "results_root",
    "estimate_cost",
    "longest_job_first",
    "makespan_estimate",
    "campaign_summary",
    "campaign_table",
    "completed_records",
    "format_table",
    "record_field",
    "series_grid",
]
