"""Cost-aware campaign scheduling (longest-job-first / LPT).

Every run's wall time is estimated from the same machine model the
benchmark harness uses (:mod:`repro.machine.patterns`): the modeled
time of one timestep at the run's order/solver/scale, times the step
count.  For functional runs at laptop scale the absolute number is not
the wall clock, but the *relative* ordering it induces (exact ≫ cutoff ≫
low; big meshes ≫ small) is what longest-job-first needs to keep the
worker pool from ending on one long straggler — the classic LPT
approximation to minimum makespan.
"""

from __future__ import annotations

from typing import Sequence

from repro.campaign.deck import RunSpec
from repro.machine.model import LASSEN, MachineSpec
from repro.machine.patterns import (
    DEFAULT_REUSE_INTERVAL,
    cutoff_evaluation,
    exact_evaluation,
    low_order_evaluation,
    step_time,
    tree_evaluation,
)
from repro.util.errors import ConfigurationError

__all__ = [
    "evaluation_model",
    "estimate_cost",
    "longest_job_first",
    "makespan_estimate",
]


def evaluation_model(spec: RunSpec, machine: MachineSpec = LASSEN):
    """The analytic :class:`EvaluationModel` matching a spec's solver.

    Single source of the order/BR-solver → pattern dispatch: both the
    scheduler's cost estimates and the executor's model-mode runs use
    this, so scheduling order always reflects what model runs compute.
    """
    cfg = spec.config
    shape = tuple(cfg.num_nodes)
    if cfg.order == "low":
        return low_order_evaluation(spec.ranks, shape, machine, cfg.fft_config)
    if cfg.br_solver == "cutoff":
        extent = (cfg.high[0] - cfg.low[0], cfg.high[1] - cfg.low[1])
        # A deck's rebuild_freq caps how long cached structures may be
        # reused, so it also caps the modeled amortization.
        interval = DEFAULT_REUSE_INTERVAL
        if cfg.rebuild_freq > 0:
            interval = min(interval, float(cfg.rebuild_freq + 1))
        return cutoff_evaluation(
            spec.ranks, shape, machine, cutoff=cfg.cutoff, domain_extent=extent,
            skin=cfg.skin, reuse_interval=interval,
        )
    if cfg.br_solver == "tree":
        return tree_evaluation(
            spec.ranks, shape, machine,
            theta=cfg.theta, leaf_size=cfg.leaf_size,
        )
    return exact_evaluation(spec.ranks, shape, machine)


def estimate_cost(spec: RunSpec, machine: MachineSpec = LASSEN) -> float:
    """Modeled seconds for one run (step model × steps)."""
    return spec.steps * step_time(evaluation_model(spec, machine))


def longest_job_first(
    specs: Sequence[RunSpec], machine: MachineSpec = LASSEN
) -> list[RunSpec]:
    """Stable longest-job-first ordering (ties keep submission order)."""
    indexed = list(enumerate(specs))
    indexed.sort(key=lambda item: (-estimate_cost(item[1], machine), item[0]))
    return [spec for _, spec in indexed]


def makespan_estimate(
    specs: Sequence[RunSpec],
    workers: int,
    machine: MachineSpec = LASSEN,
) -> float:
    """Greedy-LPT makespan: each job goes to the least-loaded worker."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    loads = [0.0] * workers
    for spec in longest_job_first(specs, machine):
        loads[loads.index(min(loads))] += estimate_cost(spec, machine)
    return max(loads) if loads else 0.0
