"""Persistent campaign run store (JSON-lines index + per-run artifacts).

Layout, rooted at ``$REPRO_RESULTS_DIR`` (default ``results/``)::

    results/campaigns/<campaign>/index.jsonl      append-only run records
    results/campaigns/<campaign>/runs/<hash>/     per-run artifact dir
        result.json                               diagnostics / model payload
        checkpoint.npz                            in-progress solver state

The index is append-only and the *last* record per run hash wins, so a
failed run can be retried and a re-submitted deck skips every hash whose
latest record is ``completed`` — content-addressed dedup without any
locking beyond the per-store append mutex.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.campaign.deck import RunSpec
from repro.util.errors import ConfigurationError

__all__ = ["RunRecord", "CampaignStore", "results_root"]

COMPLETED = "completed"
FAILED = "failed"


def results_root() -> str:
    """Root of the shared results tree (``REPRO_RESULTS_DIR`` overrides)."""
    return os.path.normpath(os.environ.get("REPRO_RESULTS_DIR") or "results")


@dataclass
class RunRecord:
    """One line of the campaign index."""

    run_hash: str
    status: str
    spec: dict[str, Any] = field(default_factory=dict)
    result: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    elapsed: float = 0.0
    timestamp: float = 0.0
    resumed_from_step: int = 0

    def to_json(self) -> str:
        return json.dumps(
            {
                "run_hash": self.run_hash,
                "status": self.status,
                "spec": self.spec,
                "result": self.result,
                "error": self.error,
                "elapsed": self.elapsed,
                "timestamp": self.timestamp,
                "resumed_from_step": self.resumed_from_step,
            },
            sort_keys=True,
            default=str,
        )

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        data = json.loads(line)
        return cls(**{k: data.get(k, v) for k, v in _RECORD_DEFAULTS.items()})


_RECORD_DEFAULTS = {
    "run_hash": "",
    "status": FAILED,
    "spec": {},
    "result": {},
    "error": None,
    "elapsed": 0.0,
    "timestamp": 0.0,
    "resumed_from_step": 0,
}


class CampaignStore:
    """Append-only, content-addressed store for one campaign's runs."""

    def __init__(self, campaign: str, root: Optional[str] = None) -> None:
        if not campaign or os.sep in campaign or campaign in (".", ".."):
            raise ConfigurationError(f"invalid campaign name {campaign!r}")
        self.campaign = campaign
        self.root = os.path.join(root or results_root(), "campaigns", campaign)
        self._lock = threading.Lock()

    # -- paths ----------------------------------------------------------------

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "index.jsonl")

    def run_dir(self, run_hash: str, create: bool = False) -> str:
        path = os.path.join(self.root, "runs", run_hash)
        if create:
            os.makedirs(path, exist_ok=True)
        return path

    def checkpoint_path(self, run_hash: str) -> str:
        return os.path.join(self.run_dir(run_hash), "checkpoint.npz")

    def result_path(self, run_hash: str) -> str:
        return os.path.join(self.run_dir(run_hash), "result.json")

    # -- index ----------------------------------------------------------------

    def iter_records(self) -> Iterator[RunRecord]:
        """All index records in append order (empty if no index yet)."""
        if not os.path.exists(self.index_path):
            return
        with open(self.index_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield RunRecord.from_json(line)

    def latest_records(self) -> dict[str, RunRecord]:
        """Last record per run hash (retries overwrite earlier failures)."""
        latest: dict[str, RunRecord] = {}
        for record in self.iter_records():
            latest[record.run_hash] = record
        return latest

    def completed_hashes(self) -> set[str]:
        return {
            h for h, rec in self.latest_records().items()
            if rec.status == COMPLETED
        }

    def is_completed(self, run_hash: str) -> bool:
        record = self.latest_records().get(run_hash)
        return record is not None and record.status == COMPLETED

    def append(self, record: RunRecord) -> None:
        """Thread-safe append of one record to the index."""
        if not record.timestamp:
            record.timestamp = time.time()
        with self._lock:
            os.makedirs(self.root, exist_ok=True)
            with open(self.index_path, "a", encoding="utf-8") as fh:
                fh.write(record.to_json() + "\n")

    # -- results --------------------------------------------------------------

    def record_completed(
        self,
        spec: RunSpec,
        result: dict[str, Any],
        *,
        elapsed: float = 0.0,
        resumed_from_step: int = 0,
    ) -> RunRecord:
        run_hash = spec.run_hash()
        self.run_dir(run_hash, create=True)
        with open(self.result_path(run_hash), "w", encoding="utf-8") as fh:
            json.dump(result, fh, indent=2, default=str)
        record = RunRecord(
            run_hash=run_hash,
            status=COMPLETED,
            spec=spec.payload(),
            result=result,
            elapsed=elapsed,
            resumed_from_step=resumed_from_step,
        )
        self.append(record)
        return record

    def record_failed(
        self, spec: RunSpec, error: str, *, elapsed: float = 0.0
    ) -> RunRecord:
        record = RunRecord(
            run_hash=spec.run_hash(),
            status=FAILED,
            spec=spec.payload(),
            error=error,
            elapsed=elapsed,
        )
        self.append(record)
        return record

    def load_result(self, run_hash: str) -> Optional[dict[str, Any]]:
        path = self.result_path(run_hash)
        if not os.path.exists(path):
            record = self.latest_records().get(run_hash)
            return record.result if record and record.status == COMPLETED else None
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
