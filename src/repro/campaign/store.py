"""Persistent campaign run store (JSON-lines index + per-run artifacts).

Layout, rooted at ``$REPRO_RESULTS_DIR`` (default ``results/``)::

    results/campaigns/<campaign>/index.jsonl      append-only run records
    results/campaigns/<campaign>/.store.lock      advisory inter-process lock
    results/campaigns/<campaign>/status.json      live executor heartbeat
    results/campaigns/<campaign>/runs/<hash>/     per-run artifact dir
        result.json                               diagnostics / model payload
        telemetry.json                            measured wall-clock artifact
        checkpoint.npz                            in-progress solver state

The index is append-only and the *last* record per run hash wins, so a
failed run can be retried and a re-submitted deck skips every hash whose
latest record is ``completed`` — content-addressed dedup without any
read-side coordination.

Concurrency control
-------------------
The store is safe for concurrent *processes*, not just threads (the
process-pool executor backend runs one writer per worker process):

* every index record is appended with a **single ``write`` on an
  ``O_APPEND`` descriptor**, so concurrent appends interleave at record
  granularity, never mid-line;
* writers additionally hold an advisory file lock
  (``fcntl.flock`` on ``.store.lock``; an ``O_EXCL`` lock-file spin on
  platforms without ``fcntl``) spanning the append and any artifact
  write, so a record and its ``result.json`` land as a unit;
* ``result.json`` is written atomically (temp file + ``os.replace``,
  the same hardening the checkpoint path has) — readers can never
  observe a half-written result;
* readers tolerate what crashes leave behind: a torn trailing
  ``index.jsonl`` line is skipped with a warning instead of poisoning
  ``latest_records()``, and an unreadable ``result.json`` degrades to
  the result embedded in the index record instead of crashing
  ``load_result``.
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.campaign.deck import RunSpec
from repro.telemetry.artifacts import atomic_write_json
from repro.util.errors import ConfigurationError

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

__all__ = ["RunRecord", "CampaignStore", "results_root"]

logger = logging.getLogger(__name__)

COMPLETED = "completed"
FAILED = "failed"
#: A worker process claimed the run and is executing it.  Superseded by
#: a terminal record on exit; a *trailing* ``running`` record therefore
#: marks a run whose worker died (or was interrupted) mid-flight.
RUNNING = "running"

#: How long the no-fcntl lock-file fallback spins before giving up.
_LOCK_TIMEOUT = 30.0


def results_root() -> str:
    """Root of the shared results tree (``REPRO_RESULTS_DIR`` overrides)."""
    return os.path.normpath(os.environ.get("REPRO_RESULTS_DIR") or "results")


@dataclass
class RunRecord:
    """One line of the campaign index.

    ``owner`` and ``lease_expires`` only carry meaning on ``running``
    claim markers: who claimed the run (a worker/service identity) and
    the wall-clock time its lease lapses.  Records written before these
    fields existed parse with the defaults (``None`` / ``0.0``), which
    reads as "claimant unknown, lease already lapsed" — exactly the
    conservative interpretation lease reclaim wants.  Readers from
    before the fields existed ignore the extra keys, so old and new
    writers can share one index file.
    """

    run_hash: str
    status: str
    spec: dict[str, Any] = field(default_factory=dict)
    result: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    elapsed: float = 0.0
    timestamp: float = 0.0
    resumed_from_step: int = 0
    owner: Optional[str] = None
    lease_expires: float = 0.0

    def to_json(self) -> str:
        return json.dumps(
            {
                "run_hash": self.run_hash,
                "status": self.status,
                "spec": self.spec,
                "result": self.result,
                "error": self.error,
                "elapsed": self.elapsed,
                "timestamp": self.timestamp,
                "resumed_from_step": self.resumed_from_step,
                "owner": self.owner,
                "lease_expires": self.lease_expires,
            },
            sort_keys=True,
            default=str,
        )

    @classmethod
    def from_json(cls, line: str) -> "RunRecord":
        data = json.loads(line)
        return cls(**{k: data.get(k, v) for k, v in _RECORD_DEFAULTS.items()})


_RECORD_DEFAULTS = {
    "run_hash": "",
    "status": FAILED,
    "spec": {},
    "result": {},
    "error": None,
    "elapsed": 0.0,
    "timestamp": 0.0,
    "resumed_from_step": 0,
    "owner": None,
    "lease_expires": 0.0,
}


class CampaignStore:
    """Append-only, content-addressed store for one campaign's runs."""

    def __init__(self, campaign: str, root: Optional[str] = None) -> None:
        if not campaign or os.sep in campaign or campaign in (".", ".."):
            raise ConfigurationError(f"invalid campaign name {campaign!r}")
        self.campaign = campaign
        #: The results-tree root this store hangs off — kept so worker
        #: processes can rebuild an equivalent store from
        #: ``(campaign, base_root)`` alone.
        self.base_root = os.path.normpath(root) if root else results_root()
        self.root = os.path.join(self.base_root, "campaigns", campaign)
        self._lock = threading.Lock()

    # -- paths ----------------------------------------------------------------

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, "index.jsonl")

    @property
    def lock_path(self) -> str:
        return os.path.join(self.root, ".store.lock")

    def run_dir(self, run_hash: str, create: bool = False) -> str:
        path = os.path.join(self.root, "runs", run_hash)
        if create:
            os.makedirs(path, exist_ok=True)
        return path

    def checkpoint_path(self, run_hash: str) -> str:
        return os.path.join(self.run_dir(run_hash), "checkpoint.npz")

    def result_path(self, run_hash: str) -> str:
        return os.path.join(self.run_dir(run_hash), "result.json")

    def telemetry_path(self, run_hash: str) -> str:
        return os.path.join(self.run_dir(run_hash), "telemetry.json")

    @property
    def status_path(self) -> str:
        return os.path.join(self.root, "status.json")

    # -- locking --------------------------------------------------------------

    @contextlib.contextmanager
    def _write_lock(self) -> Iterator[None]:
        """Advisory cross-process write lock on this campaign's store.

        ``fcntl.flock`` on a dedicated lock file where available (the
        lock dies with the holder, so a killed worker can never wedge
        the store); elsewhere an ``O_CREAT|O_EXCL`` lock-file spin with
        a deadline, treating a stale file older than the deadline as
        abandoned.
        """
        os.makedirs(self.root, exist_ok=True)
        if fcntl is not None:
            fd = os.open(self.lock_path, os.O_CREAT | os.O_RDWR, 0o666)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX)
                yield
            finally:
                os.close(fd)  # closing the fd releases the flock
            return
        # Fallback: exclusive-create spin lock (pragma: platform-specific).
        excl = self.lock_path + ".excl"
        deadline = time.monotonic() + _LOCK_TIMEOUT
        while True:
            try:
                fd = os.open(excl, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o666)
                break
            except FileExistsError:
                try:
                    if os.path.getmtime(excl) < time.time() - _LOCK_TIMEOUT:
                        os.remove(excl)  # abandoned by a dead holder
                        continue
                except OSError:
                    continue
                if time.monotonic() > deadline:
                    raise ConfigurationError(
                        f"could not acquire store lock {excl} within "
                        f"{_LOCK_TIMEOUT:g}s"
                    )
                time.sleep(0.01)
        try:
            os.close(fd)
            yield
        finally:
            try:
                os.remove(excl)
            except OSError:
                pass

    # -- index ----------------------------------------------------------------

    def iter_records(self) -> Iterator[RunRecord]:
        """All parseable index records in append order.

        A line that does not parse — in practice the torn trailing line
        a crashed writer leaves behind — is skipped with a warning
        instead of wedging every subsequent store open.
        """
        if not os.path.exists(self.index_path):
            return
        with open(self.index_path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield RunRecord.from_json(line)
                except (ValueError, TypeError, AttributeError) as exc:
                    logger.warning(
                        "%s:%d: skipping unparseable index record (%s) — "
                        "torn append from an interrupted writer?",
                        self.index_path, lineno, exc,
                    )

    def latest_records(self) -> dict[str, RunRecord]:
        """Last record per run hash (retries overwrite earlier failures)."""
        latest: dict[str, RunRecord] = {}
        for record in self.iter_records():
            latest[record.run_hash] = record
        return latest

    def completed_hashes(self) -> set[str]:
        return {
            h for h, rec in self.latest_records().items()
            if rec.status == COMPLETED
        }

    def is_completed(self, run_hash: str) -> bool:
        record = self.latest_records().get(run_hash)
        return record is not None and record.status == COMPLETED

    def _append_locked(self, record: RunRecord) -> None:
        """Append one record; the caller holds both store locks.

        The encoded record goes out in a single ``write`` on an
        ``O_APPEND`` descriptor, so records from concurrent writer
        processes interleave whole, never mid-line.
        """
        if not record.timestamp:
            record.timestamp = time.time()
        line = (record.to_json() + "\n").encode("utf-8")
        fd = os.open(
            self.index_path, os.O_CREAT | os.O_RDWR | os.O_APPEND, 0o666
        )
        try:
            # Heal a torn trailing append a killed writer left
            # behind: start this record on a fresh line, so the
            # fragment stays an isolated (skippable) line instead
            # of swallowing the new record.  Safe under the write
            # lock; O_APPEND still lands the write at EOF.
            try:
                end = os.lseek(fd, 0, os.SEEK_END)
                if end > 0 and os.pread(fd, 1, end - 1) != b"\n":
                    line = b"\n" + line
            except (OSError, AttributeError):  # pragma: no cover
                pass
            os.write(fd, line)
        finally:
            os.close(fd)

    def append(self, record: RunRecord) -> None:
        """Thread- and process-safe append of one record to the index."""
        with self._lock, self._write_lock():
            self._append_locked(record)

    # -- results --------------------------------------------------------------

    def _write_result(self, run_hash: str, result: dict[str, Any]) -> None:
        """Atomically publish ``result.json`` (mkstemp + ``os.replace``,
        via the shared :func:`~repro.telemetry.artifacts.atomic_write_json`
        primitive)."""
        self.run_dir(run_hash, create=True)
        atomic_write_json(self.result_path(run_hash), result)

    def write_telemetry(self, run_hash: str, telemetry: dict[str, Any]) -> str:
        """Atomically publish a run's measured ``telemetry.json``.

        Same durability discipline as ``result.json``; returns the
        artifact path.  ``campaign.report`` addresses the document with
        ``telemetry.``-prefixed dotted keys.
        """
        self.run_dir(run_hash, create=True)
        path = self.telemetry_path(run_hash)
        atomic_write_json(path, telemetry)
        return path

    def load_telemetry(self, run_hash: str) -> Optional[dict[str, Any]]:
        """A run's telemetry artifact, or ``None`` when there is none.

        Like :meth:`load_result`, an unreadable document is a miss, not
        an error — telemetry is advisory and must never wedge a report.
        """
        path = self.telemetry_path(run_hash)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError, UnicodeDecodeError) as exc:
            logger.warning("%s: discarding unreadable telemetry (%s)", path, exc)
            return None

    def write_status(self, status: dict[str, Any]) -> str:
        """Atomically publish the campaign-level ``status.json`` heartbeat
        (external tools poll this file; a torn read is impossible)."""
        os.makedirs(self.root, exist_ok=True)
        atomic_write_json(self.status_path, status)
        return self.status_path

    def record_running(
        self,
        spec: RunSpec,
        *,
        owner: Optional[str] = None,
        lease_expires: float = 0.0,
    ) -> RunRecord:
        """Claim marker: a worker is about to execute this run.

        A trailing ``running`` record (no terminal record after it)
        identifies the runs that were in flight when a worker process
        died — the executor uses it to attribute pool crashes, and the
        campaign service stamps ``owner`` (the claiming worker's
        identity) and ``lease_expires`` (wall-clock lease deadline) so
        a restarted coordinator can distinguish a live claimant from a
        dead one (:meth:`claimed_runs` / :meth:`expired_claims`).
        """
        record = RunRecord(
            run_hash=spec.run_hash(),
            status=RUNNING,
            spec=spec.payload(),
            owner=owner,
            lease_expires=lease_expires,
        )
        self.append(record)
        return record

    def claimed_runs(self) -> dict[str, RunRecord]:
        """Run hashes whose *latest* record is a ``running`` claim.

        These are the in-flight (or abandoned) runs: a worker claimed
        them and has not yet written a terminal record.
        """
        return {
            run_hash: record
            for run_hash, record in self.latest_records().items()
            if record.status == RUNNING
        }

    def expired_claims(self, now: Optional[float] = None) -> dict[str, RunRecord]:
        """Trailing claims whose lease has lapsed as of ``now``.

        Old-format claims (written before leases existed) carry
        ``lease_expires == 0.0`` and therefore always report as
        expired — the safe reading, since nothing can be renewing them.
        """
        if now is None:
            now = time.time()
        return {
            run_hash: record
            for run_hash, record in self.claimed_runs().items()
            if record.lease_expires <= now
        }

    def record_completed(
        self,
        spec: RunSpec,
        result: dict[str, Any],
        *,
        elapsed: float = 0.0,
        resumed_from_step: int = 0,
    ) -> RunRecord:
        run_hash = spec.run_hash()
        record = RunRecord(
            run_hash=run_hash,
            status=COMPLETED,
            spec=spec.payload(),
            result=result,
            elapsed=elapsed,
            resumed_from_step=resumed_from_step,
        )
        # One lock hold spans artifact + index, so a record and its
        # result.json land as a unit even when two processes race to
        # complete the same hash.
        with self._lock, self._write_lock():
            self._write_result(run_hash, result)
            self._append_locked(record)
        return record

    def record_failed(
        self, spec: RunSpec, error: str, *, elapsed: float = 0.0
    ) -> RunRecord:
        record = RunRecord(
            run_hash=spec.run_hash(),
            status=FAILED,
            spec=spec.payload(),
            error=error,
            elapsed=elapsed,
        )
        self.append(record)
        return record

    def load_result(self, run_hash: str) -> Optional[dict[str, Any]]:
        """The stored result payload, or ``None`` when there is none.

        An unreadable or corrupt ``result.json`` (torn by a crash) is a
        *miss*, not an error: the reader logs the discard and falls back
        to the result embedded in the latest completed index record.
        """
        path = self.result_path(run_hash)
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    return json.load(fh)
            except (OSError, ValueError, UnicodeDecodeError) as exc:
                logger.warning(
                    "%s: discarding unreadable result (%s) — falling back "
                    "to the index record", path, exc,
                )
        record = self.latest_records().get(run_hash)
        if record is not None and record.status == COMPLETED and record.result:
            return record.result
        return None
