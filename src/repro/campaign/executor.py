"""Concurrent campaign execution with dedup, failure isolation and resume.

The executor runs each :class:`~repro.campaign.deck.RunSpec` in a
thread pool (the simulated-MPI ranks inside each run are themselves
threads, and numpy releases the GIL in its kernels, so runs genuinely
overlap).  Before dispatch the batch is ordered longest-job-first by
the machine-model cost estimate (:mod:`repro.campaign.scheduler`);
completed hashes found in the store are skipped ("store hit"), one
run's failure is captured in its index record without aborting its
siblings, and interrupted functional runs resume from the checkpoint
the previous attempt left in the run directory.

``functional`` runs execute the real solver via
:func:`repro.mpi.run_spmd`; ``model`` runs evaluate the paper-scale
analytic patterns on a :class:`~repro.machine.model.MachineSpec` —
that's how one deck spans both laptop-scale physics and 1024-GPU
scaling points.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro import mpi
from repro.campaign.deck import RunSpec
from repro.campaign.scheduler import (
    estimate_cost,
    evaluation_model,
    longest_job_first,
)
from repro.campaign.store import CampaignStore
from repro.core.solver import Solver
from repro.io.checkpoint import load_checkpoint
from repro.machine.model import LASSEN, MachineSpec
from repro.machine.patterns import step_time

__all__ = ["RunOutcome", "CampaignExecutor"]


@dataclass
class RunOutcome:
    """What happened to one spec of a submitted batch."""

    spec: RunSpec
    run_hash: str
    status: str                    # "completed" | "failed" | "skipped"
    result: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    elapsed: float = 0.0
    resumed_from_step: int = 0

    @property
    def skipped(self) -> bool:
        return self.status == "skipped"

    @property
    def completed(self) -> bool:
        return self.status in ("completed", "skipped")


class CampaignExecutor:
    """Runs batches of specs against one :class:`CampaignStore`."""

    def __init__(
        self,
        store: CampaignStore,
        *,
        max_workers: int = 4,
        timeout: float = 120.0,
        machine: MachineSpec = LASSEN,
        checkpoint_freq: int = 0,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.store = store
        self.max_workers = max(1, int(max_workers))
        self.timeout = timeout
        self.machine = machine
        self.checkpoint_freq = int(checkpoint_freq)
        self._log = log

    def log(self, message: str) -> None:
        if self._log is not None:
            self._log(f"[campaign {self.store.campaign}] {message}")

    # -- batch submission ------------------------------------------------------

    def submit(self, specs: Sequence[RunSpec]) -> list[RunOutcome]:
        """Run a batch; returns outcomes in the original submission order.

        Duplicate specs within the batch run once; hashes already
        completed in the store are skipped outright.
        """
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.run_hash(), spec)
        completed = self.store.completed_hashes()

        outcomes: dict[str, RunOutcome] = {}
        to_run: list[RunSpec] = []
        for run_hash, spec in unique.items():
            result = (
                self.store.load_result(run_hash) if run_hash in completed else None
            )
            if result is not None and self._hit_is_valid(spec, result):
                outcomes[run_hash] = RunOutcome(
                    spec=spec, run_hash=run_hash, status="skipped", result=result
                )
                self.log(f"{run_hash} store hit — skipped ({spec.describe()})")
            else:
                to_run.append(spec)

        ordered = longest_job_first(to_run, self.machine)
        if ordered:
            self.log(
                f"dispatching {len(ordered)} runs on {self.max_workers} workers "
                f"(longest-job-first, modeled head cost "
                f"{estimate_cost(ordered[0], self.machine):.3g}s)"
            )
        pool = ThreadPoolExecutor(max_workers=self.max_workers)
        try:
            for outcome in pool.map(self.run_one, ordered):
                outcomes[outcome.run_hash] = outcome
        except BaseException:
            # Ctrl-C (or a submit-side error) must not let the queued
            # remainder of the campaign run to completion behind us.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        return [outcomes[spec.run_hash()] for spec in specs]

    def _hit_is_valid(self, spec: RunSpec, result: dict[str, Any]) -> bool:
        """Model-mode hits only count for the same machine they were
        costed on; functional results are machine independent."""
        if spec.mode != "model":
            return True
        return result.get("machine") in (None, self.machine.name)

    # -- single runs -----------------------------------------------------------

    def run_one(self, spec: RunSpec) -> RunOutcome:
        """Execute one spec, recording success or failure in the store.

        Only ``Exception`` counts as a run failure: an interrupt
        (``KeyboardInterrupt``/``SystemExit``) propagates to the caller
        without polluting the persistent store — the run simply has no
        record and retries on the next submission.
        """
        run_hash = spec.run_hash()
        start = time.perf_counter()
        try:
            if spec.mode == "model":
                result, resumed = self._run_model(spec), 0
            else:
                result, resumed = self._run_functional(spec, run_hash)
        except Exception:
            elapsed = time.perf_counter() - start
            error = traceback.format_exc(limit=20)
            self.store.record_failed(spec, error, elapsed=elapsed)
            self.log(f"{run_hash} FAILED after {elapsed:.2f}s ({spec.describe()})")
            return RunOutcome(
                spec=spec, run_hash=run_hash, status="failed",
                error=error, elapsed=elapsed,
            )
        elapsed = time.perf_counter() - start
        self.store.record_completed(
            spec, result, elapsed=elapsed, resumed_from_step=resumed
        )
        note = f" (resumed from step {resumed})" if resumed else ""
        self.log(f"{run_hash} completed in {elapsed:.2f}s{note} ({spec.describe()})")
        return RunOutcome(
            spec=spec, run_hash=run_hash, status="completed",
            result=result, elapsed=elapsed, resumed_from_step=resumed,
        )

    def _run_functional(
        self, spec: RunSpec, run_hash: str
    ) -> tuple[dict[str, Any], int]:
        """Real solver run on simulated ranks, with checkpoint/resume."""
        ckpt_path = self.store.checkpoint_path(run_hash)
        resume_state = None
        if os.path.exists(ckpt_path):
            try:
                state = load_checkpoint(ckpt_path)
            except Exception as exc:
                # A checkpoint a crashed attempt left unreadable must not
                # wedge the run hash forever: start fresh.
                self.log(
                    f"{run_hash} checkpoint unreadable ({exc!r}) — "
                    f"discarding it and starting fresh"
                )
                self._remove_checkpoint(ckpt_path)
            else:
                if 0 < state["step"] < spec.steps:
                    resume_state = state
                else:
                    # Resuming is impossible (already at/past the target,
                    # or a zero-step write); a stale file left in place
                    # would shadow every future attempt of this hash.
                    self._remove_checkpoint(ckpt_path)
        resumed_from = resume_state["step"] if resume_state is not None else 0
        freq = self.checkpoint_freq
        if freq > 0:
            self.store.run_dir(run_hash, create=True)

        def program(comm):
            if resume_state is not None:
                solver = Solver.from_checkpoint(
                    comm, spec.config, resume_state, spec.ic
                )
            else:
                solver = Solver(comm, spec.config, spec.ic)

            def maybe_checkpoint(s: Solver) -> None:
                if freq > 0 and s.step_count % freq == 0:
                    s.save_checkpoint(ckpt_path)

            solver.run(
                spec.steps - solver.step_count,
                on_step=maybe_checkpoint if freq > 0 else None,
            )
            return solver.diagnostics()

        results = mpi.run_spmd(spec.ranks, program, timeout=self.timeout)
        diagnostics = results[0]
        self._remove_checkpoint(ckpt_path)
        return {"kind": "functional", "diagnostics": diagnostics}, resumed_from

    @staticmethod
    def _remove_checkpoint(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def _run_model(self, spec: RunSpec) -> dict[str, Any]:
        """Paper-scale analytic point on the machine model."""
        model = evaluation_model(spec, self.machine)
        per_step = step_time(model)
        return {
            "kind": "model",
            "machine": self.machine.name,
            "step_time": per_step,
            "total_time": spec.steps * per_step,
            "comm_time": 3.0 * model.comm_total(),
            "compute_time": 3.0 * model.compute_total(),
            "phases": {
                name: {"comm": cost.comm, "compute": cost.compute}
                for name, cost in model.phases.items()
            },
        }
