"""Campaign execution with pluggable worker backends, dedup and resume.

The executor runs each :class:`~repro.campaign.deck.RunSpec` of a batch
through one of three worker backends (``worker_type``):

``"thread"`` (default)
    A thread pool.  The simulated-MPI ranks inside each run are
    themselves threads and numpy releases the GIL in its kernels, so
    runs overlap where the work is dense math — but all pure-Python
    work (tree/walk setup, comm planning, scheduling, store I/O)
    serializes on the GIL.
``"process"``
    A ``ProcessPoolExecutor`` (spawn context).  Each run is dispatched
    to a worker process as its payload dict and rebuilt there
    (:func:`_process_worker`), so runs execute with true CPU
    parallelism and full crash isolation: a worker that dies hard
    (e.g. a native-kernel fault) breaks the pool, which the executor
    treats as one failed run plus a pool respawn — never a campaign
    abort.  Workers record to the store themselves; the store's
    advisory file locking and single-``write`` appends make that safe
    across processes.
``"serial"``
    Inline in the calling thread (debugging, and the in-worker mode).

Before dispatch the batch is ordered longest-job-first by the
machine-model cost estimate (:mod:`repro.campaign.scheduler`);
completed hashes found in the store are skipped ("store hit"), one
run's failure is captured in its index record without aborting its
siblings, and interrupted functional runs resume from the checkpoint
the previous attempt left in the run directory.

Two distinct timeouts govern a run (they used to be conflated, which
made a slow-but-progressing rank die as a spurious ``DeadlockError``):

* ``timeout`` — the run-level wall-clock budget.  Checked between
  timesteps; an over-budget run raises
  :class:`~repro.util.errors.RunBudgetExceededError` and is recorded
  as failed.
* ``collective_timeout`` — the deadline for any *single* blocking
  collective inside the simulated-MPI layer (deadlock detection).  It
  defaults to the run budget, so a rank that computes slowly while its
  peers wait in a gather is never misdiagnosed as deadlocked.

``functional`` runs execute the real solver via
:func:`repro.mpi.run_spmd`; ``model`` runs evaluate the paper-scale
analytic patterns on a :class:`~repro.machine.model.MachineSpec` —
that's how one deck spans both laptop-scale physics and 1024-GPU
scaling points.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import signal
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro import mpi
from repro.campaign.deck import RunSpec
from repro.campaign.scheduler import (
    estimate_cost,
    evaluation_model,
    longest_job_first,
    makespan_estimate,
)
from repro.campaign.store import (
    COMPLETED,
    FAILED,
    RUNNING,
    CampaignStore,
    RunRecord,
)
from repro.core.solver import Solver
from repro.io.checkpoint import load_checkpoint
from repro.machine.model import LASSEN, MachineSpec
from repro.machine.patterns import step_time
from repro.mpi.trace import CommTrace
from repro.telemetry.artifacts import TELEMETRY_SCHEMA, build_run_telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.util.errors import ConfigurationError, RunBudgetExceededError

__all__ = [
    "RunOutcome",
    "CampaignExecutor",
    "WORKER_TYPES",
    "configure_logging",
]

#: The campaign subsystem's logger.  Executor progress lines go through
#: here (stdlib ``logging``) unless a legacy ``log=`` callback is
#: installed; :func:`configure_logging` wires it to stderr for the CLI.
logger = logging.getLogger("repro.campaign")

#: Environment override for the campaign log level (name or number),
#: e.g. ``REPRO_LOG=DEBUG rocketrig campaign ...``.  CLI ``-v``/
#: ``--quiet`` flags win over the environment.
LOG_LEVEL_ENV = "REPRO_LOG"


def configure_logging(verbosity: int = 0) -> int:
    """Configure the ``repro.campaign`` logger for console use.

    ``verbosity`` shifts the level relative to INFO: positive (``-v``)
    toward DEBUG, negative (``--quiet``) toward WARNING.  With
    ``verbosity == 0`` the ``$REPRO_LOG`` environment variable (level
    name or number) is honored instead.  Installs a stderr handler with
    wall-clock timestamps on the campaign logger only — library users
    who configure logging themselves are unaffected because the
    executor never calls this.  Returns the effective level.
    """
    level: int = logging.INFO
    if verbosity > 0:
        level = logging.DEBUG
    elif verbosity < 0:
        level = logging.WARNING
    else:
        env = os.environ.get(LOG_LEVEL_ENV, "").strip()
        if env:
            if env.isdigit():
                level = int(env)
            else:
                level = getattr(logging, env.upper(), logging.INFO)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)s %(message)s", "%H:%M:%S"
            )
        )
        logger.addHandler(handler)
        logger.propagate = False
    logger.setLevel(level)
    return level

WORKER_TYPES = ("thread", "process", "serial")

#: Environment default for :class:`CampaignExecutor`'s ``worker_type``
#: (mirrors ``$REPRO_BACKEND`` for compute backends): CI runs the whole
#: campaign suite under each backend by flipping this one variable.
WORKER_TYPE_ENV = "REPRO_CAMPAIGN_WORKER_TYPE"

#: Run-level wall-clock budget, aligned with the single-run CLI path
#: (which has always used 3600 s) — the executor used to pass its 120 s
#: default straight into the per-collective deadline.
DEFAULT_RUN_TIMEOUT = 3600.0

#: Test-only fault injection: the named file holds ``<run_hash> [N]``;
#: a worker process that picks that run up decrements the trip count
#: (removing the file at zero) and SIGKILLs itself.  ``N`` defaults to
#: 1; a deterministic crasher — one that also dies when re-run in solo
#: isolation and is therefore *recorded failed* — needs ``N >= 2``.
#: This is how the crash-isolation tests produce a real dead worker
#: mid-run.
KILL_FUSE_ENV = "REPRO_CAMPAIGN_KILL_FUSE"

#: Consecutive pool respawns with zero progress (no run completed, no
#: crash attributed) before the executor gives up on the remainder.
_MAX_POOL_STALLS = 3


@dataclass
class RunOutcome:
    """What happened to one spec of a submitted batch."""

    spec: RunSpec
    run_hash: str
    status: str                    # "completed" | "failed" | "skipped"
    result: dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    elapsed: float = 0.0
    resumed_from_step: int = 0

    @property
    def skipped(self) -> bool:
        return self.status == "skipped"

    @property
    def completed(self) -> bool:
        return self.status in ("completed", "skipped")


def resolve_worker_type(worker_type: Optional[str]) -> str:
    """``worker_type`` argument → concrete backend name.

    ``None`` (or ``"auto"``) defers to ``$REPRO_CAMPAIGN_WORKER_TYPE``,
    then ``"thread"``.
    """
    if worker_type in (None, "auto"):
        worker_type = os.environ.get(WORKER_TYPE_ENV) or "thread"
    if worker_type not in WORKER_TYPES:
        raise ConfigurationError(
            f"worker_type must be one of {WORKER_TYPES}, got {worker_type!r}"
        )
    return worker_type


class CampaignExecutor:
    """Runs batches of specs against one :class:`CampaignStore`."""

    def __init__(
        self,
        store: CampaignStore,
        *,
        max_workers: int = 4,
        timeout: float = DEFAULT_RUN_TIMEOUT,
        collective_timeout: Optional[float] = None,
        machine: MachineSpec = LASSEN,
        checkpoint_freq: int = 0,
        worker_type: Optional[str] = None,
        log: Optional[Callable[[str], None]] = None,
        telemetry: bool = True,
        status_interval: float = 0.0,
        batch_fast_path: bool = True,
        batch_min: int = 4,
    ) -> None:
        self.store = store
        self.max_workers = max(1, int(max_workers))
        self.timeout = timeout
        #: Per-blocking-collective deadline inside a run (deadlock
        #: detection); defaults to the whole run budget (or the stock
        #: budget when the budget is disabled with ``timeout=0``).
        if collective_timeout is None:
            collective_timeout = (
                timeout if timeout and timeout > 0 else DEFAULT_RUN_TIMEOUT
            )
        self.collective_timeout = collective_timeout
        self.machine = machine
        self.checkpoint_freq = int(checkpoint_freq)
        self.worker_type = resolve_worker_type(worker_type)
        self._log = log
        #: Collect a timed per-run CommTrace and publish a
        #: ``telemetry.json`` artifact per completed functional run.
        self.telemetry = bool(telemetry)
        #: Heartbeat period (seconds) for live ``status.json`` snapshots
        #: and one-line progress summaries during ``submit``; 0 disables
        #: the heartbeat thread (initial/final snapshots still land).
        self.status_interval = float(status_interval)
        #: Batch fast path: groups of >= ``batch_min`` same-shape serial
        #: functional runs are advanced by one in-process
        #: :class:`repro.batch.ScenarioFleet` instead of N worker
        #: dispatches (grouping key: :func:`repro.batch.fleet_key`).
        #: Checkpointing campaigns and runs resuming from a checkpoint
        #: keep the per-run path.
        self.batch_fast_path = bool(batch_fast_path)
        self.batch_min = max(2, int(batch_min))
        #: Campaign-level metrics (store hits, pool respawns, retries,
        #: run-elapsed histogram); worker-process snapshots merge in.
        self.metrics = MetricsRegistry()
        self._status: Optional[_StatusBoard] = None

    def log(self, message: str) -> None:
        """Progress line: legacy callback when installed, else the
        ``repro.campaign`` stdlib logger."""
        line = f"[campaign {self.store.campaign}] {message}"
        if self._log is not None:
            self._log(line)
        else:
            logger.info(line)

    # -- batch submission ------------------------------------------------------

    def submit(self, specs: Sequence[RunSpec]) -> list[RunOutcome]:
        """Run a batch; returns outcomes in the original submission order.

        Duplicate specs within the batch run once; hashes already
        completed in the store are skipped outright.
        """
        unique: dict[str, RunSpec] = {}
        for spec in specs:
            unique.setdefault(spec.run_hash(), spec)
        completed = self.store.completed_hashes()

        outcomes: dict[str, RunOutcome] = {}
        to_run: list[RunSpec] = []
        for run_hash, spec in unique.items():
            result = (
                self.store.load_result(run_hash) if run_hash in completed else None
            )
            if result is not None and self._hit_is_valid(spec, result):
                outcomes[run_hash] = RunOutcome(
                    spec=spec, run_hash=run_hash, status="skipped", result=result
                )
                self.metrics.counter("campaign.store_hits").inc()
                self.log(f"{run_hash} store hit — skipped ({spec.describe()})")
            else:
                to_run.append(spec)

        ordered = longest_job_first(to_run, self.machine)
        fleet_groups: list[list[RunSpec]] = []
        if self.batch_fast_path and ordered:
            fleet_groups, ordered = self._partition_fleet(ordered)
        board = _StatusBoard(self, unique)
        for run_hash, outcome in outcomes.items():
            board.mark(run_hash, "skipped")
        self._status = board
        board.publish()
        heartbeat = board.start_heartbeat(self.status_interval)
        clean_exit = False
        try:
            for group in fleet_groups:
                self._submit_fleet(group, outcomes)
            if ordered:
                self.log(
                    f"dispatching {len(ordered)} runs on {self.max_workers} "
                    f"{self.worker_type} workers (longest-job-first, modeled "
                    f"head cost {estimate_cost(ordered[0], self.machine):.3g}s)"
                )
                if self.worker_type == "process":
                    self._submit_process(ordered, outcomes)
                elif self.worker_type == "thread":
                    self._submit_threads(ordered, outcomes)
                else:
                    for spec in ordered:
                        outcome = self._run_tracked(spec)
                        outcomes[outcome.run_hash] = outcome
            clean_exit = True
        finally:
            board.stop_heartbeat(heartbeat)
            board.finalize(interrupted=not clean_exit)
            self._status = None
        return [outcomes[spec.run_hash()] for spec in specs]

    def _run_tracked(self, spec: RunSpec) -> RunOutcome:
        """``run_one`` plus status-board transitions (thread/serial path)."""
        self._mark(spec.run_hash(), "running")
        outcome = self.run_one(spec)
        self._mark(outcome.run_hash, outcome.status)
        return outcome

    def _mark(self, run_hash: str, state: str) -> None:
        board = self._status
        if board is not None:
            board.mark(run_hash, state)

    def _submit_threads(
        self, ordered: Sequence[RunSpec], outcomes: dict[str, RunOutcome]
    ) -> None:
        pool = ThreadPoolExecutor(max_workers=self.max_workers)
        try:
            for outcome in pool.map(self._run_tracked, ordered):
                outcomes[outcome.run_hash] = outcome
        except BaseException:
            # Ctrl-C (or a submit-side error) must not let the queued
            # remainder of the campaign run to completion behind us.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)

    def _hit_is_valid(self, spec: RunSpec, result: dict[str, Any]) -> bool:
        """Model-mode hits only count for the same machine they were
        costed on; functional results are machine independent."""
        if spec.mode != "model":
            return True
        return result.get("machine") in (None, self.machine.name)

    # -- batch fast path -------------------------------------------------------

    def _partition_fleet(
        self, ordered: Sequence[RunSpec]
    ) -> tuple[list[list[RunSpec]], list[RunSpec]]:
        """Split the scheduled batch into fleet groups and the remainder.

        Eligible specs — serial (``ranks == 1``) functional runs whose
        configs share a :func:`repro.batch.fleet_key` and that are not
        resuming from a checkpoint in a checkpointing campaign — are
        grouped; groups reaching ``batch_min`` go to
        :meth:`_submit_fleet`, everything else keeps its
        longest-job-first slot in the per-run dispatch.
        """
        from repro.batch import fleet_key

        groups: dict[tuple, list[RunSpec]] = {}
        rest: list[RunSpec] = []
        for spec in ordered:
            key = None
            if (
                spec.mode == "functional"
                and spec.ranks == 1
                and self.checkpoint_freq == 0
                and not os.path.exists(
                    self.store.checkpoint_path(spec.run_hash())
                )
            ):
                key = fleet_key(spec.config)
            if key is None:
                rest.append(spec)
            else:
                groups.setdefault(key, []).append(spec)
        fleets: list[list[RunSpec]] = []
        for group in groups.values():
            if len(group) >= self.batch_min:
                fleets.append(group)
            else:
                rest.extend(group)
        if fleets and rest:
            slot = {spec.run_hash(): i for i, spec in enumerate(ordered)}
            rest.sort(key=lambda spec: slot[spec.run_hash()])
        return fleets, rest

    def _submit_fleet(
        self, group: Sequence[RunSpec], outcomes: dict[str, RunOutcome]
    ) -> None:
        """Advance one fleet group in-process, recording per-run results.

        Store records match the serial worker path exactly — one
        terminal ``completed``/``failed`` record per run with the same
        result payload shape, no ``running`` claim markers — so
        ``campaign_summary`` counts fleet-absorbed runs identically to
        pool runs.  Each completed run still gets its own
        ``telemetry.json`` (the fleet trace is shared; ``fleet_size``
        marks it as amortized).
        """
        from repro.batch import ScenarioFleet

        n = len(group)
        self.log(
            f"batch fast path: advancing {n} same-shape serial runs in one "
            f"in-process fleet ({group[0].describe()})"
        )
        trace = CommTrace() if self.telemetry else None
        start = time.perf_counter()
        pending: dict[int, RunSpec] = {}

        def fail_remaining(error: str) -> None:
            elapsed = time.perf_counter() - start
            remaining = [s for s in group if s.run_hash() not in outcomes]
            for spec in remaining:
                run_hash = spec.run_hash()
                self.store.record_failed(spec, error, elapsed=elapsed)
                self.metrics.counter("campaign.runs_failed").inc()
                outcomes[run_hash] = RunOutcome(
                    spec=spec, run_hash=run_hash, status="failed",
                    error=error, elapsed=elapsed,
                )
                self._mark(run_hash, "failed")
                self.log(
                    f"{run_hash} FAILED in batch fleet ({spec.describe()})"
                )

        try:
            fleet = ScenarioFleet(group[0].config, trace=trace)
            for spec in group:
                sid = fleet.add(spec.config, spec.ic, spec.steps)
                pending[sid] = spec
                self._mark(spec.run_hash(), "running")
        except Exception:
            fail_remaining(traceback.format_exc(limit=20))
            return

        def on_finish(sid: int, result: dict[str, Any]) -> None:
            spec = pending.pop(sid)
            run_hash = spec.run_hash()
            elapsed = time.perf_counter() - start
            payload = {
                "kind": "functional",
                "diagnostics": result["diagnostics"],
            }
            self.store.record_completed(spec, payload, elapsed=elapsed)
            self.metrics.counter("campaign.runs_completed").inc()
            self.metrics.counter("campaign.batch_absorbed").inc()
            self.metrics.histogram("campaign.run_elapsed").observe(elapsed)
            outcomes[run_hash] = RunOutcome(
                spec=spec, run_hash=run_hash, status="completed",
                result=payload, elapsed=elapsed,
            )
            self._mark(run_hash, "completed")
            if trace is not None:
                self.store.write_telemetry(
                    run_hash,
                    build_run_telemetry(
                        trace,
                        elapsed=elapsed,
                        extra={
                            "run_hash": run_hash,
                            "ranks": spec.ranks,
                            "fleet_size": n,
                        },
                    ),
                )

        try:
            fleet.run(on_finish=on_finish)
        except Exception:
            fail_remaining(traceback.format_exc(limit=20))
            return
        if trace is not None:
            self.metrics.merge(trace.metrics.snapshot())
        self.log(
            f"batch fast path: {n} runs completed in "
            f"{time.perf_counter() - start:.2f}s"
        )

    # -- process backend -------------------------------------------------------

    def _worker_settings(self) -> dict[str, Any]:
        """Everything a worker process needs to rebuild this executor."""
        return {
            "timeout": self.timeout,
            "collective_timeout": self.collective_timeout,
            "checkpoint_freq": self.checkpoint_freq,
            "machine": self.machine,
            "telemetry": self.telemetry,
        }

    def _submit_process(
        self, ordered: Sequence[RunSpec], outcomes: dict[str, RunOutcome]
    ) -> None:
        """Dispatch runs to spawned worker processes, surviving crashes.

        A hard worker death breaks the whole ``ProcessPoolExecutor``
        (every unresolved future raises ``BrokenProcessPool``), which
        leaves the *culprit* ambiguous in a parallel wave.  The store's
        ``running`` claim markers disambiguate: broken specs whose
        latest record is a terminal one already finished (their worker
        recorded before the pool died), specs never claimed retry in
        the next parallel wave, and claimed-but-unfinished *suspects*
        re-run one at a time — a pool that breaks with a single run in
        flight convicts it with certainty, so exactly the crashing run
        is recorded ``failed`` while its siblings complete.
        """
        settings = self._worker_settings()
        queue: list[RunSpec] = list(ordered)
        suspects: list[RunSpec] = []
        stalls = 0
        while queue or suspects:
            if suspects:
                batch, workers, solo = [suspects.pop(0)], 1, True
            else:
                batch, workers, solo = queue, self.max_workers, False
                queue = []
            broken, resolved = self._process_wave(
                batch, workers, settings, outcomes
            )
            if not broken:
                stalls = 0
                continue
            if solo:
                # The pool broke with exactly one run in flight — but
                # the worker may still have finished and recorded
                # before dying in the result hand-off, so consult the
                # store before convicting.
                spec = broken[0]
                if not self._harvest_terminal(
                    spec, self.store.latest_records(), outcomes
                ):
                    self._record_worker_death(spec, outcomes)
                stalls = 0
                continue
            self.log(
                f"worker pool died with {len(broken)} runs unresolved — "
                f"respawning"
            )
            self.metrics.counter("campaign.pool_respawns").inc()
            progressed = resolved > 0
            latest = self.store.latest_records()
            for spec in broken:
                run_hash = spec.run_hash()
                record = latest.get(run_hash)
                if self._harvest_terminal(spec, latest, outcomes):
                    progressed = True
                elif record is not None and record.status == RUNNING:
                    suspects.append(spec)
                    self._mark(run_hash, "queued")
                    self.metrics.counter("campaign.retries").inc()
                    progressed = True
                else:
                    queue.append(spec)
                    self._mark(run_hash, "queued")
                    self.metrics.counter("campaign.retries").inc()
            stalls = 0 if progressed else stalls + 1
            if stalls >= _MAX_POOL_STALLS and queue:
                # The pool keeps dying before any run can even claim
                # itself — something environmental (OOM killer, broken
                # interpreter).  Record the remainder instead of
                # spinning forever.
                error = (
                    f"worker pool died {stalls} consecutive times before "
                    f"any queued run could start"
                )
                for spec in queue:
                    self.store.record_failed(spec, error)
                    outcomes[spec.run_hash()] = RunOutcome(
                        spec=spec, run_hash=spec.run_hash(), status="failed",
                        error=error,
                    )
                    self._mark(spec.run_hash(), "failed")
                    self.log(f"{spec.run_hash()} FAILED: {error}")
                return

    def _harvest_terminal(
        self,
        spec: RunSpec,
        latest: dict[str, RunRecord],
        outcomes: dict[str, RunOutcome],
    ) -> bool:
        """Adopt a terminal store record a worker wrote before the pool
        died on it; returns False when the run has no terminal record."""
        run_hash = spec.run_hash()
        record = latest.get(run_hash)
        if record is None:
            return False
        if record.status == COMPLETED:
            # The worker finished and recorded; only the result
            # hand-off was lost.
            outcomes[run_hash] = RunOutcome(
                spec=spec, run_hash=run_hash, status="completed",
                result=self.store.load_result(run_hash) or {},
                elapsed=record.elapsed,
                resumed_from_step=record.resumed_from_step,
            )
            self._mark(run_hash, "completed")
            return True
        if record.status == FAILED:
            outcomes[run_hash] = RunOutcome(
                spec=spec, run_hash=run_hash, status="failed",
                error=record.error, elapsed=record.elapsed,
            )
            self._mark(run_hash, "failed")
            return True
        return False

    def _process_wave(
        self,
        specs: Sequence[RunSpec],
        workers: int,
        settings: dict[str, Any],
        outcomes: dict[str, RunOutcome],
    ) -> tuple[list[RunSpec], int]:
        """One pool generation: returns (broken specs, resolved count)."""
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(specs)),
            mp_context=multiprocessing.get_context("spawn"),
        )
        broken: list[RunSpec] = []
        resolved = 0
        try:
            futures = []
            for i, spec in enumerate(specs):
                try:
                    future = pool.submit(
                        _process_worker,
                        spec.payload(),
                        self.store.campaign,
                        self.store.base_root,
                        settings,
                    )
                except BrokenProcessPool:
                    # The pool died while dispatch was still under way:
                    # everything not yet submitted is broken too — let
                    # the caller classify and respawn rather than abort
                    # the campaign.
                    broken.extend(specs[i:])
                    break
                futures.append((future, spec))
                self._mark(spec.run_hash(), "running")
            for future, spec in futures:
                run_hash = spec.run_hash()
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    broken.append(spec)
                except Exception:
                    # Dispatch-side failure (e.g. the payload could not
                    # be shipped): the worker never saw the run, so the
                    # record must be written here.
                    error = traceback.format_exc(limit=20)
                    self.store.record_failed(spec, error)
                    outcomes[run_hash] = RunOutcome(
                        spec=spec, run_hash=run_hash, status="failed",
                        error=error,
                    )
                    self._mark(run_hash, "failed")
                    self.log(f"{run_hash} FAILED at dispatch "
                             f"({spec.describe()})")
                    resolved += 1
                else:
                    self._replay_worker_logs(payload.get("log", []))
                    self.metrics.merge(payload.get("metrics") or {})
                    outcomes[run_hash] = RunOutcome(
                        spec=spec,
                        run_hash=payload["run_hash"],
                        status=payload["status"],
                        result=payload["result"],
                        error=payload["error"],
                        elapsed=payload["elapsed"],
                        resumed_from_step=payload["resumed_from_step"],
                    )
                    self._mark(run_hash, payload["status"])
                    resolved += 1
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        pool.shutdown(wait=True)
        return broken, resolved

    def _replay_worker_logs(self, entries: Sequence[Any]) -> None:
        """Re-emit a worker process's buffered log lines.

        Workers buffer their progress lines with per-line wall-clock
        timestamps; replaying through ``logger.makeRecord`` with the
        original ``created`` time keeps interleaved campaign logs honest
        — a line reads as of when the worker wrote it, not when the
        parent drained the payload.  Bare-string entries (old-format
        payloads) replay without a timestamp.
        """
        for entry in entries:
            if (
                isinstance(entry, (list, tuple))
                and len(entry) == 2
                and isinstance(entry[1], str)
            ):
                stamp, line = float(entry[0]), entry[1]
            else:
                stamp, line = None, str(entry)
            if self._log is not None:
                self._log(line)
                continue
            if not logger.isEnabledFor(logging.INFO):
                continue
            record = logger.makeRecord(
                logger.name, logging.INFO, "worker", 0, line, (), None
            )
            if stamp is not None:
                record.created = stamp
                record.msecs = (stamp - int(stamp)) * 1000.0
                record.relativeCreated = (
                    stamp - logging._startTime  # noqa: SLF001 - stdlib epoch
                ) * 1000.0
            logger.handle(record)

    def _record_worker_death(
        self, spec: RunSpec, outcomes: dict[str, RunOutcome]
    ) -> None:
        run_hash = spec.run_hash()
        error = (
            "worker process died (BrokenProcessPool) while executing this "
            "run — killed by a signal, a native-kernel fault, or the OOM "
            "killer; resubmit the deck to retry it"
        )
        self.store.record_failed(spec, error)
        outcomes[run_hash] = RunOutcome(
            spec=spec, run_hash=run_hash, status="failed", error=error,
        )
        self._mark(run_hash, "failed")
        self.log(f"{run_hash} FAILED: worker process died "
                 f"({spec.describe()})")

    # -- single runs -----------------------------------------------------------

    def run_one(self, spec: RunSpec) -> RunOutcome:
        """Execute one spec, recording success or failure in the store.

        Only ``Exception`` counts as a run failure: an interrupt
        (``KeyboardInterrupt``/``SystemExit``) propagates to the caller
        without polluting the persistent store — the run simply has no
        record and retries on the next submission.
        """
        run_hash = spec.run_hash()
        start = time.perf_counter()
        try:
            if spec.mode == "model":
                result, resumed = self._run_model(spec), 0
            else:
                result, resumed = self._run_functional(spec, run_hash)
        except Exception:
            elapsed = time.perf_counter() - start
            error = traceback.format_exc(limit=20)
            self.store.record_failed(spec, error, elapsed=elapsed)
            self.metrics.counter("campaign.runs_failed").inc()
            self.log(f"{run_hash} FAILED after {elapsed:.2f}s ({spec.describe()})")
            return RunOutcome(
                spec=spec, run_hash=run_hash, status="failed",
                error=error, elapsed=elapsed,
            )
        elapsed = time.perf_counter() - start
        self.store.record_completed(
            spec, result, elapsed=elapsed, resumed_from_step=resumed
        )
        self.metrics.counter("campaign.runs_completed").inc()
        self.metrics.histogram("campaign.run_elapsed").observe(elapsed)
        note = f" (resumed from step {resumed})" if resumed else ""
        self.log(f"{run_hash} completed in {elapsed:.2f}s{note} ({spec.describe()})")
        return RunOutcome(
            spec=spec, run_hash=run_hash, status="completed",
            result=result, elapsed=elapsed, resumed_from_step=resumed,
        )

    def _run_functional(
        self, spec: RunSpec, run_hash: str
    ) -> tuple[dict[str, Any], int]:
        """Real solver run on simulated ranks, with checkpoint/resume."""
        ckpt_path = self.store.checkpoint_path(run_hash)
        resume_state = None
        if os.path.exists(ckpt_path):
            try:
                state = load_checkpoint(ckpt_path)
            except Exception as exc:
                # A checkpoint a crashed attempt left unreadable must not
                # wedge the run hash forever: start fresh.
                self.log(
                    f"{run_hash} checkpoint unreadable ({exc!r}) — "
                    f"discarding it and starting fresh"
                )
                self._remove_checkpoint(ckpt_path)
            else:
                if 0 < state["step"] < spec.steps:
                    resume_state = state
                else:
                    # Resuming is impossible (already at/past the target,
                    # or a zero-step write); a stale file left in place
                    # would shadow every future attempt of this hash.
                    self._remove_checkpoint(ckpt_path)
        resumed_from = resume_state["step"] if resume_state is not None else 0
        freq = self.checkpoint_freq
        if freq > 0:
            self.store.run_dir(run_hash, create=True)
        deadline = (
            time.perf_counter() + self.timeout
            if self.timeout and self.timeout > 0 else None
        )

        def program(comm):
            if resume_state is not None:
                solver = Solver.from_checkpoint(
                    comm, spec.config, resume_state, spec.ic
                )
            else:
                solver = Solver(comm, spec.config, spec.ic)

            def on_step(s: Solver) -> None:
                # Run-level budget: enforced between steps on every
                # rank, so an over-budget run fails cleanly instead of
                # tripping the per-collective deadlock detector.
                if deadline is not None and time.perf_counter() > deadline:
                    raise RunBudgetExceededError(
                        f"run exceeded its {self.timeout:g}s wall-clock "
                        f"budget at step {s.step_count}/{spec.steps}"
                    )
                if freq > 0 and s.step_count % freq == 0:
                    s.save_checkpoint(ckpt_path)

            solver.run(spec.steps - solver.step_count, on_step=on_step)
            return solver.diagnostics()

        trace = CommTrace() if self.telemetry else None
        t_run = time.perf_counter()
        results = mpi.run_spmd(
            spec.ranks, program, trace=trace, timeout=self.collective_timeout
        )
        run_wall = time.perf_counter() - t_run
        diagnostics = results[0]
        self._remove_checkpoint(ckpt_path)
        if trace is not None:
            self.store.write_telemetry(
                run_hash,
                build_run_telemetry(
                    trace,
                    elapsed=run_wall,
                    extra={"run_hash": run_hash, "ranks": spec.ranks},
                ),
            )
        return {"kind": "functional", "diagnostics": diagnostics}, resumed_from

    @staticmethod
    def _remove_checkpoint(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def _run_model(self, spec: RunSpec) -> dict[str, Any]:
        """Paper-scale analytic point on the machine model."""
        model = evaluation_model(spec, self.machine)
        per_step = step_time(model)
        return {
            "kind": "model",
            "machine": self.machine.name,
            "step_time": per_step,
            "total_time": spec.steps * per_step,
            "comm_time": 3.0 * model.comm_total(),
            "compute_time": 3.0 * model.compute_total(),
            "phases": {
                name: {"comm": cost.comm, "compute": cost.compute}
                for name, cost in model.phases.items()
            },
        }


class _StatusBoard:
    """Live status of one submitted batch.

    Tracks every unique run hash through ``queued → running →
    completed/failed/skipped`` (plus ``interrupted`` when ``submit``
    unwinds on an interrupt), renders the snapshot external tools poll
    as ``status.json`` (written atomically in the campaign root), and —
    on a heartbeat interval — logs a one-line progress summary with a
    longest-job-first modeled ETA for the remainder.

    The ``executor`` host is duck-typed, not nominally typed: the board
    only touches ``store``, ``machine``, ``max_workers``,
    ``worker_type``, ``metrics`` and ``log()``.  Anything providing
    those can drive a board — the campaign service's
    :class:`~repro.campaign.service.Coordinator` does exactly that (and
    subclasses the board to add a ``service`` section to the snapshot).
    """

    _TERMINAL = frozenset(("completed", "failed", "skipped", "interrupted"))

    def __init__(
        self, executor: "CampaignExecutor", specs: dict[str, RunSpec]
    ) -> None:
        self._executor = executor
        self._specs = dict(specs)
        self._lock = threading.Lock()
        self._state: dict[str, str] = {h: "queued" for h in specs}
        self._started: dict[str, float] = {}
        self._elapsed: dict[str, float] = {}

    def mark(self, run_hash: str, state: str) -> None:
        """Transition one run; unknown hashes are ignored (a retried
        run may resolve under a worker-reported hash)."""
        now = time.perf_counter()
        with self._lock:
            if run_hash not in self._state:
                return
            if state == "running":
                self._started[run_hash] = now
            elif run_hash in self._started:
                self._elapsed[run_hash] = now - self._started.pop(run_hash)
            self._state[run_hash] = state

    def snapshot(self) -> dict[str, Any]:
        """The JSON-able status document (the ``status.json`` schema)."""
        executor = self._executor
        now = time.perf_counter()
        with self._lock:
            states = dict(self._state)
            started = dict(self._started)
            elapsed = dict(self._elapsed)
        counts = {
            key: 0
            for key in (
                "queued", "running", "completed", "failed", "skipped",
                "interrupted",
            )
        }
        for state in states.values():
            counts[state] = counts.get(state, 0) + 1
        remaining = [
            self._specs[h]
            for h, state in states.items()
            if state in ("queued", "running")
        ]
        eta = (
            makespan_estimate(remaining, executor.max_workers, executor.machine)
            if remaining
            else 0.0
        )
        runs: dict[str, Any] = {}
        for run_hash, state in states.items():
            entry: dict[str, Any] = {"state": state}
            if run_hash in started:
                entry["elapsed"] = now - started[run_hash]
            elif run_hash in elapsed:
                entry["elapsed"] = elapsed[run_hash]
            runs[run_hash] = entry
        return {
            "schema": TELEMETRY_SCHEMA,
            "campaign": executor.store.campaign,
            "timestamp": time.time(),
            "worker_type": executor.worker_type,
            "max_workers": executor.max_workers,
            "total": len(states),
            "counts": counts,
            "eta_modeled_seconds": eta,
            "done": all(s in self._TERMINAL for s in states.values()),
            "runs": runs,
            "metrics": executor.metrics.snapshot(),
        }

    def publish(self) -> dict[str, Any]:
        """Snapshot + atomic ``status.json`` write (I/O errors are
        swallowed: status is advisory, never worth failing a run)."""
        snap = self.snapshot()
        try:
            self._executor.store.write_status(snap)
        except OSError:  # pragma: no cover - disk-full style failures
            pass
        return snap

    @staticmethod
    def summary_line(snap: dict[str, Any]) -> str:
        counts = snap["counts"]
        line = (
            f"status: {counts['completed']}/{snap['total']} completed, "
            f"{counts['running']} running, {counts['queued']} queued, "
            f"{counts['failed']} failed, {counts['skipped']} skipped"
        )
        if not snap["done"]:
            line += f" — modeled ETA {snap['eta_modeled_seconds']:.3g}s"
        return line

    def start_heartbeat(
        self, interval: float
    ) -> Optional[tuple[threading.Event, threading.Thread]]:
        if interval <= 0:
            return None

        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval):
                snap = self.publish()
                self._executor.log(self.summary_line(snap))
                if snap["done"]:
                    return

        thread = threading.Thread(
            target=beat, name="campaign-status", daemon=True
        )
        thread.start()
        return (stop, thread)

    def stop_heartbeat(
        self, handle: Optional[tuple[threading.Event, threading.Thread]]
    ) -> None:
        if handle is None:
            return
        stop, thread = handle
        stop.set()
        thread.join(timeout=5.0)

    def finalize(self, *, interrupted: bool) -> dict[str, Any]:
        """Terminal snapshot: non-terminal runs become ``interrupted``
        when the batch unwound on an interrupt/error."""
        if interrupted:
            with self._lock:
                for run_hash, state in self._state.items():
                    if state not in self._TERMINAL:
                        self._state[run_hash] = "interrupted"
        return self.publish()


def _maybe_trip_kill_fuse(run_hash: str) -> None:
    """Fault injection for the crash-isolation tests (see KILL_FUSE_ENV)."""
    fuse = os.environ.get(KILL_FUSE_ENV)
    if not fuse or not os.path.exists(fuse):
        return
    try:
        with open(fuse, "r", encoding="utf-8") as fh:
            fields = fh.read().split()
    except OSError:
        return
    if not fields or fields[0] != run_hash:
        return
    remaining = int(fields[1]) if len(fields) > 1 else 1
    try:
        if remaining <= 1:
            os.remove(fuse)  # burnt out: the next attempt completes
        else:
            with open(fuse, "w", encoding="utf-8") as fh:
                fh.write(f"{run_hash} {remaining - 1}")
    except OSError:
        pass
    os.kill(os.getpid(), signal.SIGKILL)


def _process_worker(
    payload: dict[str, Any],
    campaign: str,
    store_root: str,
    settings: dict[str, Any],
) -> dict[str, Any]:
    """Process-pool entry point: rebuild state, claim, run, report.

    Everything crosses the process boundary as plain data: the spec as
    its payload dict (:meth:`RunSpec.from_payload` reverses it), the
    store as ``(campaign, root)``, the executor knobs as a settings
    dict.  The worker writes its own store records — the claim marker
    first, so a hard death leaves a trailing ``running`` record the
    parent uses for crash attribution — and returns a JSON-able outcome
    dict plus its log lines for the parent to replay.
    """
    spec = RunSpec.from_payload(payload, campaign=campaign)
    store = CampaignStore(campaign, root=store_root)
    # Each buffered line carries the wall-clock time it was produced, so
    # the parent can replay it with its original timestamp instead of
    # the (much later) drain time.
    logs: list[tuple[float, str]] = []
    executor = CampaignExecutor(
        store,
        max_workers=1,
        worker_type="serial",
        timeout=settings["timeout"],
        collective_timeout=settings["collective_timeout"],
        machine=settings["machine"],
        checkpoint_freq=settings["checkpoint_freq"],
        telemetry=settings.get("telemetry", True),
        log=lambda line: logs.append((time.time(), line)),
    )
    store.record_running(spec)
    _maybe_trip_kill_fuse(spec.run_hash())
    outcome = executor.run_one(spec)
    return {
        "run_hash": outcome.run_hash,
        "status": outcome.status,
        "result": outcome.result,
        "error": outcome.error,
        "elapsed": outcome.elapsed,
        "resumed_from_step": outcome.resumed_from_step,
        "log": logs,
        "metrics": executor.metrics.snapshot(),
    }
