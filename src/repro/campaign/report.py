"""Campaign aggregation into figure/table payloads.

Turns a campaign's completed run records into the same shapes the
benchmark harness emits (``benchmarks/common.py``): ``{"header": ...,
"rows": ...}`` tables and row-by-column series grids keyed by any spec
or result field.  Fields are addressed with dotted keys into the run
record — e.g. ``"config.fft_config"``, ``"ranks"``,
``"result.step_time"``, ``"result.diagnostics.amplitude"`` — and
``telemetry.``-prefixed keys reach into the run's measured
``telemetry.json`` artifact (``"telemetry.phase.fft.wall"``,
``"telemetry.metrics.solver.steps"``).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.campaign.store import COMPLETED, FAILED, RUNNING, CampaignStore, RunRecord
from repro.util.errors import ConfigurationError

__all__ = [
    "record_field",
    "completed_records",
    "campaign_table",
    "series_grid",
    "campaign_summary",
    "format_table",
]

_MISSING = object()


def record_field(
    record: RunRecord, key: str, *, store: Optional[CampaignStore] = None
) -> Any:
    """Resolve a dotted key against a run record.

    The first segment selects ``spec`` fields by default; ``result.``
    addresses the stored result payload, ``run_hash`` / ``status`` /
    ``elapsed`` the record itself, and — when a ``store`` is supplied —
    ``telemetry.`` the run's measured ``telemetry.json`` artifact
    (e.g. ``telemetry.phase.fft.wall``,
    ``telemetry.metrics.solver.steps``).
    """
    if key in ("run_hash", "status", "elapsed", "error", "resumed_from_step"):
        return getattr(record, key)
    parts = key.split(".")
    if parts[0] == "telemetry":
        if store is None:
            return None
        node = store.load_telemetry(record.run_hash)
        parts = parts[1:]
    elif parts[0] == "result":
        node = record.result
        parts = parts[1:]
    else:
        node = record.spec
    # Metrics names themselves contain dots ("solver.steps"), so under
    # "metrics" try the whole remaining key as one flat name first.
    if parts and parts[0] == "metrics" and isinstance(node, dict):
        metrics = node.get("metrics")
        if isinstance(metrics, dict):
            flat = ".".join(parts[1:])
            if flat in metrics:
                return metrics[flat]
    for part in parts:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def completed_records(store: CampaignStore) -> list[RunRecord]:
    """Latest completed record per hash, in stable (hash-sorted) order."""
    latest = store.latest_records()
    return [
        latest[h] for h in sorted(latest)
        if latest[h].status == COMPLETED
    ]


def campaign_table(
    store: CampaignStore,
    columns: Sequence[str],
    *,
    sort_by: Optional[str] = None,
) -> dict[str, Any]:
    """A ``{"header", "rows"}`` payload with one row per completed run."""
    if not columns:
        raise ConfigurationError("campaign_table needs at least one column")
    records = completed_records(store)
    if sort_by is not None:
        records.sort(
            key=lambda r: _sort_key(record_field(r, sort_by, store=store))
        )
    rows = [
        [record_field(r, c, store=store) for c in columns] for r in records
    ]
    return {"header": list(columns), "rows": rows}


def series_grid(
    store: CampaignStore,
    *,
    row: str,
    col: str,
    value: str,
) -> dict[str, Any]:
    """Pivot completed runs into a dense row × column value grid.

    Returns ``{"row_key", "col_key", "rows", "cols", "grid"}`` where
    ``grid[row_label]`` is the list of values in column order (``None``
    for missing cells).
    """
    records = completed_records(store)
    cells: dict[tuple[Any, Any], Any] = {}
    for record in records:
        r = record_field(record, row, store=store)
        c = record_field(record, col, store=store)
        cells[(_freeze(r), _freeze(c))] = record_field(record, value, store=store)
    rows = sorted({r for r, _ in cells}, key=_sort_key)
    cols = sorted({c for _, c in cells}, key=_sort_key)
    grid = {
        str(r): [cells.get((r, c)) for c in cols]
        for r in rows
    }
    return {
        "row_key": row, "col_key": col, "value_key": value,
        "rows": rows, "cols": cols, "grid": grid,
    }


def campaign_summary(store: CampaignStore) -> dict[str, Any]:
    """Counts and aggregate elapsed time of the campaign so far.

    A trailing ``running`` record (a worker claimed the run but never
    wrote a terminal record — killed or interrupted mid-flight) is
    counted as ``interrupted``, not ``failed``: resubmitting the deck
    retries those hashes.
    """
    latest = store.latest_records()
    completed = [r for r in latest.values() if r.status == COMPLETED]
    failed = [r for r in latest.values() if r.status == FAILED]
    running = [r for r in latest.values() if r.status == RUNNING]
    return {
        "campaign": store.campaign,
        "runs": len(latest),
        "completed": len(completed),
        "failed": len(failed),
        "interrupted": len(running),
        "resumed": sum(1 for r in completed if r.resumed_from_step > 0),
        "elapsed_total": sum(r.elapsed for r in latest.values()),
    }


def format_table(header: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width rendering (same look as the benchmark harness)."""
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(header)
    ]
    lines = ["  ".join(str(h).rjust(w) for h, w in zip(header, widths))]
    for row in rows:
        lines.append("  ".join(_fmt(v).rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _freeze(value: Any) -> Any:
    return tuple(value) if isinstance(value, list) else value


def _sort_key(value: Any) -> tuple:
    # Mixed-type sort: numbers first in numeric order, then everything
    # else by string form.
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return (1, str(value))
    return (0, value)
