"""Coordinator/worker job protocol: typed messages, one codec, two wires.

The campaign service (:mod:`repro.campaign.service`) detaches run
execution from a single process tree: a long-running coordinator owns
the run queue and pull-based workers fetch work over the small message
protocol defined here.  Following the yoda/droid messenger shape — a
tiny typed-message layer that "could easily be replaced with another
transport" — the protocol is three layers, each independently testable:

**Messages** — one frozen dataclass per message type:

=================  =============  ==========================================
wire type          dataclass      meaning
=================  =============  ==========================================
``job-request``    `JobRequest`   worker → coordinator: ready for work
``new-job``        `NewJob`       coordinator → worker: a leased run spec
``no-work-left``   `NoWorkLeft`   coordinator → worker: drain and exit
``heartbeat``      `Heartbeat`    worker → coordinator: lease renewal
``job-done``       `JobDone`      worker → coordinator: run completed
``job-failed``     `JobFailed`    worker → coordinator: run raised, recorded
=================  =============  ==========================================

**Codec** — :func:`encode_message` / :func:`decode_message` map messages
to/from canonical JSON bytes.  JSON, *never* pickle: frames arrive from
a network socket, and unpickling untrusted bytes is arbitrary code
execution.  Anything malformed — truncated JSON, an unknown type, a
missing field, a non-JSON blob — raises the typed
:class:`ProtocolError` instead of leaking decoder internals.

**Framing / channels** — a transport-agnostic pair of interfaces:
:class:`WorkerChannel` (worker side: ``send``/``recv``) and
:class:`CoordinatorEndpoint` (coordinator side: ``poll``/``send`` keyed
by connection id).  Two implementations ship day one:

* **Sockets** (:class:`SocketEndpoint` / :class:`SocketWorkerChannel`) —
  local TCP with length-prefixed frames (4-byte big-endian length +
  codec bytes).  :class:`FrameDecoder` reassembles frames from an
  arbitrarily chunked byte stream, so message boundaries are invariant
  under any TCP segmentation.
* **Simulated MPI** (:class:`MpiEndpoint` / :class:`MpiWorkerChannel`) —
  the in-repo :mod:`repro.mpi` object transport (rank 0 = coordinator),
  used for deterministic in-process protocol tests.  The same codec
  bytes travel as the message payload, so both wires exercise one
  serialization path.
"""

from __future__ import annotations

import json
import logging
import queue
import socket
import struct
import threading
import time
from dataclasses import MISSING as _MISSING
from dataclasses import asdict, dataclass, fields
from typing import Any, Iterator, Optional, Union

from repro.util.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ChannelClosedError",
    "JobRequest",
    "NewJob",
    "NoWorkLeft",
    "Heartbeat",
    "JobDone",
    "JobFailed",
    "MESSAGE_TYPES",
    "Message",
    "encode_message",
    "decode_message",
    "frame",
    "FrameDecoder",
    "WorkerChannel",
    "CoordinatorEndpoint",
    "SocketWorkerChannel",
    "SocketEndpoint",
    "MpiWorkerChannel",
    "MpiEndpoint",
    "stream_frames",
]

logger = logging.getLogger("repro.campaign")

#: Bumped on any incompatible message-schema change; both ends refuse
#: frames from a different major version with a typed error instead of
#: mis-parsing them.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's payload.  A length prefix beyond this is
#: a corrupt or hostile stream, rejected before any allocation.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Simulated-MPI message tags (one per direction, mirroring the
#: FROM_DROID / FROM_YODA split of the exemplar messenger).
TAG_TO_COORDINATOR = 71
TAG_FROM_COORDINATOR = 72


class ProtocolError(ReproError):
    """A frame or message violated the wire protocol (truncated frame,
    oversized length prefix, non-JSON payload, unknown or malformed
    message type, version mismatch)."""


class ChannelClosedError(ProtocolError):
    """The peer hung up: the underlying transport cannot deliver or
    produce any further messages on this channel."""


# -- messages -----------------------------------------------------------------


@dataclass(frozen=True)
class JobRequest:
    """Worker → coordinator: ``worker`` is idle and wants a run."""

    worker: str

    TYPE = "job-request"


@dataclass(frozen=True)
class NewJob:
    """Coordinator → worker: a leased run.

    Carries everything a worker needs to rebuild and execute the run
    with no shared state beyond the filesystem: the spec payload dict
    (:meth:`repro.campaign.deck.RunSpec.payload`), the campaign name
    and store root to open the :class:`~repro.campaign.store.CampaignStore`,
    and the lease the coordinator granted — the worker must heartbeat
    faster than ``lease_timeout`` or the run is reclaimed and requeued.
    """

    run_hash: str
    payload: dict
    campaign: str
    store_root: str
    lease_timeout: float
    timeout: float = 0.0
    collective_timeout: float = 0.0

    TYPE = "new-job"


@dataclass(frozen=True)
class NoWorkLeft:
    """Coordinator → worker: the queue is drained; exit cleanly."""

    reason: str = "queue drained"

    TYPE = "no-work-left"


@dataclass(frozen=True)
class Heartbeat:
    """Worker → coordinator: still executing ``run_hash``; renew the lease."""

    worker: str
    run_hash: str

    TYPE = "heartbeat"


@dataclass(frozen=True)
class JobDone:
    """Worker → coordinator: the run completed and its store record is
    already written (the worker records terminally before reporting, so
    a lost ``job-done`` can never lose a result)."""

    worker: str
    run_hash: str
    elapsed: float = 0.0
    resumed_from_step: int = 0

    TYPE = "job-done"


@dataclass(frozen=True)
class JobFailed:
    """Worker → coordinator: the run raised; the failure is recorded in
    the store and ``error`` carries the final traceback line."""

    worker: str
    run_hash: str
    error: str = ""
    elapsed: float = 0.0

    TYPE = "job-failed"


Message = Union[JobRequest, NewJob, NoWorkLeft, Heartbeat, JobDone, JobFailed]

#: Wire-type string → dataclass, the codec's single dispatch table.
MESSAGE_TYPES: dict[str, type] = {
    cls.TYPE: cls
    for cls in (JobRequest, NewJob, NoWorkLeft, Heartbeat, JobDone, JobFailed)
}


# -- codec --------------------------------------------------------------------

#: Annotation string → runtime check for the codec's field validation
#: (annotations are strings under ``from __future__ import annotations``).
_FIELD_TYPES: dict[str, Any] = {
    "str": str,
    "dict": dict,
    "float": (int, float),
    "int": int,
}


def encode_message(msg: Message) -> bytes:
    """Canonical JSON bytes for one message (sorted keys, UTF-8)."""
    cls = type(msg)
    wire_type = getattr(cls, "TYPE", None)
    if wire_type not in MESSAGE_TYPES:
        raise ProtocolError(f"not a protocol message: {msg!r}")
    doc = {"v": PROTOCOL_VERSION, "type": wire_type, **asdict(msg)}
    return json.dumps(doc, sort_keys=True).encode("utf-8")


def decode_message(data: bytes) -> Message:
    """Parse codec bytes back into a typed message.

    Every malformed input — non-UTF-8, non-JSON, a JSON scalar, a
    version or type mismatch, missing fields, fields of the wrong shape
    — raises :class:`ProtocolError`.  Unknown *extra* keys are ignored
    (forward compatibility within one major version).  No byte of the
    input is ever interpreted as a pickle.
    """
    try:
        doc = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError(
            f"frame must decode to a JSON object, got {type(doc).__name__}"
        )
    version = doc.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"speaking {PROTOCOL_VERSION}"
        )
    wire_type = doc.get("type")
    cls = MESSAGE_TYPES.get(wire_type)
    if cls is None:
        raise ProtocolError(f"unknown message type {wire_type!r}")
    kwargs = {}
    for field in fields(cls):
        if field.name in doc:
            value = doc[field.name]
            expected = _FIELD_TYPES.get(field.type)
            if expected is not None and not isinstance(value, expected):
                raise ProtocolError(
                    f"{wire_type} field {field.name!r} must be "
                    f"{field.type}, got {type(value).__name__}"
                )
            if isinstance(value, bool) and field.type in ("float", "int"):
                raise ProtocolError(
                    f"{wire_type} field {field.name!r} must be "
                    f"{field.type}, got bool"
                )
            kwargs[field.name] = value
        elif (
            field.default is not _MISSING
            or field.default_factory is not _MISSING  # type: ignore[misc]
        ):
            continue
        else:
            raise ProtocolError(
                f"{wire_type} message missing required field {field.name!r}"
            )
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed {wire_type} message: {exc}") from None


# -- framing ------------------------------------------------------------------

_LEN = struct.Struct(">I")


def frame(data: bytes) -> bytes:
    """Length-prefix one codec payload for a byte-stream transport."""
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES"
        )
    return _LEN.pack(len(data)) + data


class FrameDecoder:
    """Incremental length-prefixed frame reassembly.

    Feed arbitrarily chunked bytes; complete frames come back in order.
    The decode is invariant under chunking — any split of the same byte
    stream yields the same frame sequence — which is what makes TCP
    segmentation invisible to the protocol layer.  A length prefix
    larger than :data:`MAX_FRAME_BYTES` raises immediately;
    :meth:`finish` raises if the stream ended mid-frame (a truncated
    stream is an error, not a silent drop).
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, chunk: bytes) -> list[bytes]:
        """Absorb ``chunk``; return every frame it completed."""
        self._buf.extend(chunk)
        frames: list[bytes] = []
        while True:
            if len(self._buf) < _LEN.size:
                return frames
            (length,) = _LEN.unpack_from(self._buf)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length prefix {length} exceeds MAX_FRAME_BYTES "
                    f"— corrupt or hostile stream"
                )
            if len(self._buf) < _LEN.size + length:
                return frames
            frames.append(bytes(self._buf[_LEN.size:_LEN.size + length]))
            del self._buf[:_LEN.size + length]

    @property
    def pending(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def finish(self) -> None:
        """Assert the stream ended on a frame boundary."""
        if self._buf:
            raise ProtocolError(
                f"stream truncated mid-frame ({len(self._buf)} bytes of an "
                f"incomplete frame)"
            )


# -- channel interfaces -------------------------------------------------------


class WorkerChannel:
    """Worker side of the wire: one pipe to the coordinator."""

    def send(self, msg: Message) -> None:
        """Deliver one message to the coordinator.

        Raises :class:`ChannelClosedError` when the coordinator is gone.
        """
        raise NotImplementedError

    def recv(self, timeout: Optional[float] = None) -> Optional[Message]:
        """Next message from the coordinator, or ``None`` on timeout.

        Raises :class:`ChannelClosedError` when the coordinator hung up.
        """
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class CoordinatorEndpoint:
    """Coordinator side of the wire: many workers, one mailbox.

    Connections are keyed by an opaque ``conn_id`` (the reply address);
    worker *identity* travels in the messages themselves, so one worker
    that reconnects shows up as a new ``conn_id`` with the same
    ``worker`` field.
    """

    def poll(self, timeout: float) -> list[tuple[str, Message]]:
        """Drain available ``(conn_id, message)`` pairs, waiting up to
        ``timeout`` seconds for the first one."""
        raise NotImplementedError

    def send(self, conn_id: str, msg: Message) -> bool:
        """Deliver to one connection; False if the peer is gone (a dead
        worker's lease expiry is the recovery path, not this send)."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


# -- socket transport ---------------------------------------------------------


class SocketWorkerChannel(WorkerChannel):
    """Worker side of the TCP transport (length-prefixed codec frames).

    ``connect_timeout`` bounds the initial connection (with retries, so
    a worker may be launched slightly before its coordinator binds).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect_timeout: float = 10.0,
    ) -> None:
        self.address = (host, int(port))
        deadline = time.monotonic() + connect_timeout
        last_error: Optional[Exception] = None
        while True:
            try:
                self._sock = socket.create_connection(
                    self.address, timeout=connect_timeout
                )
                break
            except OSError as exc:
                last_error = exc
                if time.monotonic() >= deadline:
                    raise ChannelClosedError(
                        f"could not connect to coordinator at "
                        f"{host}:{port} within {connect_timeout:g}s "
                        f"({last_error})"
                    ) from None
                time.sleep(0.05)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = FrameDecoder()
        self._inbox: list[Message] = []
        self._send_lock = threading.Lock()
        self._closed = False

    def send(self, msg: Message) -> None:
        data = frame(encode_message(msg))
        with self._send_lock:
            if self._closed:
                raise ChannelClosedError("channel is closed")
            try:
                self._sock.sendall(data)
            except OSError as exc:
                raise ChannelClosedError(
                    f"coordinator connection lost on send: {exc}"
                ) from None

    def recv(self, timeout: Optional[float] = None) -> Optional[Message]:
        if self._inbox:
            return self._inbox.pop(0)
        if self._closed:
            raise ChannelClosedError("channel is closed")
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            if deadline is None:
                self._sock.settimeout(None)
            else:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._sock.settimeout(remaining)
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                return None
            except OSError as exc:
                raise ChannelClosedError(
                    f"coordinator connection lost: {exc}"
                ) from None
            if not chunk:
                self._decoder.finish()  # mid-frame EOF is a ProtocolError
                raise ChannelClosedError("coordinator closed the connection")
            frames = self._decoder.feed(chunk)
            if frames:
                self._inbox.extend(decode_message(f) for f in frames[1:])
                return decode_message(frames[0])

    def close(self) -> None:
        with self._send_lock:
            self._closed = True
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - close best-effort
                pass


class _SocketConnection:
    """One accepted worker connection inside :class:`SocketEndpoint`."""

    def __init__(self, conn_id: str, sock: socket.socket) -> None:
        self.conn_id = conn_id
        self.sock = sock
        self.send_lock = threading.Lock()
        self.alive = True


class SocketEndpoint(CoordinatorEndpoint):
    """Coordinator side of the TCP transport.

    Binds a listening socket (``port=0`` picks an ephemeral port — read
    it back from :attr:`address`), accepts connections on a background
    thread, and runs one reader thread per connection that reassembles
    frames and pushes decoded ``(conn_id, message)`` pairs onto a
    single mailbox queue.  A reader that hits garbage logs and drops
    the connection — one hostile or corrupt peer cannot take the
    coordinator down — and a disconnect is *not* a requeue signal: the
    lease clock is the only authority on reclaiming a silent worker's
    work, so both wires share one recovery semantics.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._mailbox: "queue.Queue[tuple[str, Message]]" = queue.Queue()
        self._conns: dict[str, _SocketConnection] = {}
        self._conns_lock = threading.Lock()
        self._closed = threading.Event()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn_id = f"{peer[0]}:{peer[1]}"
            conn = _SocketConnection(conn_id, sock)
            with self._conns_lock:
                self._conns[conn_id] = conn
            threading.Thread(
                target=self._read_loop,
                args=(conn,),
                name=f"service-read-{conn_id}",
                daemon=True,
            ).start()

    def _read_loop(self, conn: _SocketConnection) -> None:
        decoder = FrameDecoder()
        try:
            while not self._closed.is_set():
                chunk = conn.sock.recv(65536)
                if not chunk:
                    decoder.finish()
                    return
                for data in decoder.feed(chunk):
                    self._mailbox.put((conn.conn_id, decode_message(data)))
        except ProtocolError as exc:
            logger.warning(
                "service: dropping connection %s on protocol violation: %s",
                conn.conn_id, exc,
            )
        except OSError:
            pass  # peer vanished; the lease clock owns recovery
        finally:
            self._drop(conn)

    def _drop(self, conn: _SocketConnection) -> None:
        conn.alive = False
        with self._conns_lock:
            self._conns.pop(conn.conn_id, None)
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover - close best-effort
            pass

    def poll(self, timeout: float) -> list[tuple[str, Message]]:
        messages: list[tuple[str, Message]] = []
        try:
            messages.append(self._mailbox.get(timeout=max(0.0, timeout)))
        except queue.Empty:
            return messages
        while True:
            try:
                messages.append(self._mailbox.get_nowait())
            except queue.Empty:
                return messages

    def send(self, conn_id: str, msg: Message) -> bool:
        with self._conns_lock:
            conn = self._conns.get(conn_id)
        if conn is None or not conn.alive:
            return False
        data = frame(encode_message(msg))
        with conn.send_lock:
            try:
                conn.sock.sendall(data)
            except OSError:
                self._drop(conn)
                return False
        return True

    def connections(self) -> list[str]:
        """Currently-connected ``conn_id``\\ s (for status reporting)."""
        with self._conns_lock:
            return sorted(self._conns)

    def close(self) -> None:
        self._closed.set()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close best-effort
            pass
        with self._conns_lock:
            conns = list(self._conns.values())
        for conn in conns:
            self._drop(conn)


# -- simulated-MPI transport --------------------------------------------------


def _mpi_poll(comm, source, tag, deadline) -> Optional[tuple[int, bytes]]:
    """Poll the simulated-MPI mailbox for one codec frame.

    Returns ``(source_rank, payload)`` or ``None`` at the deadline.
    Non-blocking probe + sleep, so a missing peer is a timeout the
    caller classifies — never a :class:`DeadlockError` from the
    simulator's collective watchdog.
    """
    from repro import mpi as _mpi

    while True:
        if comm.Iprobe(source, tag):
            status = _mpi.Status()
            payload = comm.recv(source=source, tag=tag, status=status)
            return status.Get_source(), payload
        if deadline is not None and time.monotonic() >= deadline:
            return None
        time.sleep(0.001)


class MpiWorkerChannel(WorkerChannel):
    """Worker side of the simulated-MPI transport (coordinator = rank 0).

    Messages travel as codec bytes on the object path, so the very same
    ``encode_message``/``decode_message`` pair is exercised as on the
    socket wire — only the framing differs (the simulator preserves
    message boundaries, so no length prefix is needed).
    """

    def __init__(self, comm, coordinator_rank: int = 0) -> None:
        self._comm = comm
        self._root = coordinator_rank
        self._closed = False

    def send(self, msg: Message) -> None:
        if self._closed:
            raise ChannelClosedError("channel is closed")
        self._comm.send(encode_message(msg), self._root, TAG_TO_COORDINATOR)

    def recv(self, timeout: Optional[float] = None) -> Optional[Message]:
        if self._closed:
            raise ChannelClosedError("channel is closed")
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        got = _mpi_poll(self._comm, self._root, TAG_FROM_COORDINATOR, deadline)
        if got is None:
            return None
        _, payload = got
        if not isinstance(payload, (bytes, bytearray)):
            raise ProtocolError(
                f"expected codec bytes on the wire, got "
                f"{type(payload).__name__}"
            )
        return decode_message(bytes(payload))

    def close(self) -> None:
        self._closed = True


class MpiEndpoint(CoordinatorEndpoint):
    """Coordinator side of the simulated-MPI transport.

    ``conn_id`` is ``"rank<N>"`` — the sender's rank is the reply
    address, exactly as in the yoda/droid messenger.
    """

    def __init__(self, comm) -> None:
        from repro import mpi as _mpi

        self._comm = comm
        self._any_source = _mpi.ANY_SOURCE
        self._closed = False

    def poll(self, timeout: float) -> list[tuple[str, Message]]:
        if self._closed:
            return []
        deadline = time.monotonic() + max(0.0, timeout)
        messages: list[tuple[str, Message]] = []
        got = _mpi_poll(
            self._comm, self._any_source, TAG_TO_COORDINATOR, deadline
        )
        while got is not None:
            src, payload = got
            if not isinstance(payload, (bytes, bytearray)):
                raise ProtocolError(
                    f"expected codec bytes on the wire, got "
                    f"{type(payload).__name__}"
                )
            messages.append((f"rank{src}", decode_message(bytes(payload))))
            # Drain whatever else is already queued without waiting.
            got = _mpi_poll(
                self._comm, self._any_source, TAG_TO_COORDINATOR,
                time.monotonic(),
            )
        return messages

    def send(self, conn_id: str, msg: Message) -> bool:
        if self._closed:
            return False
        if not conn_id.startswith("rank"):
            raise ProtocolError(f"bad MPI conn_id {conn_id!r}")
        self._comm.send(
            encode_message(msg), int(conn_id[4:]), TAG_FROM_COORDINATOR
        )
        return True

    def connections(self) -> list[str]:
        """Every non-coordinator rank of the communicator."""
        return [
            f"rank{r}" for r in range(self._comm.size)
            if r != 0
        ]

    def close(self) -> None:
        self._closed = True


def stream_frames(messages: "Iterator[Message]") -> bytes:
    """Concatenate the framed encodings of ``messages`` into one byte
    stream (test helper: the chunking-invariance property feeds this
    through :class:`FrameDecoder` under arbitrary splits)."""
    return b"".join(frame(encode_message(m)) for m in messages)
