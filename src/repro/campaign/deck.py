"""Declarative sweep decks: parameter grids → frozen run specs.

A :class:`CampaignDeck` is the batch analogue of a single rocket-rig
input deck: it names a campaign, fixes base solver/initial-condition
parameters, and declares swept axes either as a cartesian ``grid``
(every combination) or as ``zip`` axes (advanced together, like Python's
``zip``).  :meth:`CampaignDeck.expand` turns the deck into an ordered
list of :class:`RunSpec` — each a frozen (SolverConfig, InitialCondition,
ranks, steps, mode) tuple with a deterministic content hash that the
run store uses for content-addressed dedup.

Deck JSON example (see README "Campaign orchestration")::

    {
      "name": "fig9_small",
      "mode": "model",
      "steps": 10,
      "base": {"order": "low", "num_nodes": [64, 64]},
      "ic": {"kind": "multi_mode", "magnitude": 0.05, "period": 4},
      "grid": {"fft_config": [0, 7]},
      "zip": {"ranks": [4, 16], "num_nodes": [[64, 64], [128, 128]]}
    }

Axis keys name :class:`~repro.core.SolverConfig` fields (``fft_config``
accepts a Table-1 index), ``ic.<field>`` for initial-condition fields,
the run-level keys ``ranks`` / ``steps``, or ``scenario`` — a named
pack from the scenario registry (:mod:`repro.scenarios`).  A
``scenario`` value (in ``base`` or as an axis) resolves the pack's
``config``/``ic`` dicts *underneath* the deck's own ``base``/``ic`` and
axis overrides, so campaigns sweep scenario packs exactly the way they
sweep backends::

    {"grid": {"scenario": ["multimode-periodic", "singlemode-rollup"],
              "backend": ["numpy", "blocked"]}}

Expansion always emits fully-resolved specs — a pack-derived RunSpec
hashes identically to the same parameters written out explicitly, so
store dedup, LJF scheduling and the batch fast path are unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.initial_conditions import InitialCondition
from repro.core.solver import SolverConfig
from repro.fft.config import FftConfig
from repro.util.errors import ConfigurationError

__all__ = ["RunSpec", "CampaignDeck", "build_config"]

_MODES = ("functional", "model")

#: Deck key naming a scenario-registry pack to resolve underneath the deck.
_SCENARIO_KEY = "scenario"

#: SolverConfig fields stored as coordinate tuples (JSON carries lists).
_TUPLE_FIELDS = ("num_nodes", "low", "high", "periodic", "spatial_low", "spatial_high")

_CONFIG_FIELDS = {f.name for f in dataclasses.fields(SolverConfig)}
_IC_FIELDS = {f.name for f in dataclasses.fields(InitialCondition)}


def build_config(params: dict[str, Any]) -> SolverConfig:
    """SolverConfig from a JSON-ish dict (lists → tuples, int fft index).

    The one dict→config path shared by deck expansion, process-pool
    payload rebuilds and the scenario-pack loader, so every consumer
    coerces tuple fields and ``fft_config`` indices identically.
    """
    kwargs = dict(params)
    for key in _TUPLE_FIELDS:
        if kwargs.get(key) is not None:
            kwargs[key] = tuple(kwargs[key])
    fft = kwargs.get("fft_config")
    if isinstance(fft, int):
        kwargs["fft_config"] = FftConfig.from_index(fft)
    elif isinstance(fft, dict):
        kwargs["fft_config"] = FftConfig(**fft)
    return SolverConfig(**kwargs)


# Backwards-compatible alias (pre-scenario-registry name).
_build_config = build_config


def _canonical(value: Any) -> Any:
    """JSON-stable form of a parameter value (tuples become lists)."""
    if isinstance(value, FftConfig):
        return value.index
    if isinstance(value, (tuple, list)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in sorted(value.items())}
    return value


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined point of a campaign."""

    config: SolverConfig
    ic: InitialCondition
    ranks: int = 1
    steps: int = 10
    mode: str = "functional"
    campaign: str = "default"

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"run mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.ranks < 1:
            raise ConfigurationError(f"ranks must be >= 1, got {self.ranks}")
        if self.steps < 1:
            raise ConfigurationError(f"steps must be >= 1, got {self.steps}")

    def payload(self) -> dict[str, Any]:
        """Canonical JSON-able form — the input to :meth:`run_hash`.

        ``fft_config`` is stored as its Table-1 index (not a nested
        dict), so reports can group by it directly.
        """
        config = {
            f.name: _canonical(getattr(self.config, f.name))
            for f in dataclasses.fields(self.config)
        }
        return {
            "config": config,
            "ic": _canonical(dataclasses.asdict(self.ic)),
            "ranks": self.ranks,
            "steps": self.steps,
            "mode": self.mode,
        }

    @classmethod
    def from_payload(
        cls, payload: dict[str, Any], campaign: str = "default"
    ) -> "RunSpec":
        """Rebuild a spec from its :meth:`payload` dict.

        The inverse of :meth:`payload`: process-pool workers receive
        specs as payload dicts (no pickled dataclasses cross the
        process boundary) and rebuild them here.  The round trip is
        hash-preserving — ``from_payload(s.payload()).run_hash() ==
        s.run_hash()`` — which is what lets a worker process record
        results under the same content address the parent dispatched.
        """
        return cls(
            config=_build_config(payload["config"]),
            ic=InitialCondition(**payload["ic"]),
            ranks=int(payload["ranks"]),
            steps=int(payload["steps"]),
            mode=payload["mode"],
            campaign=campaign,
        )

    def run_hash(self) -> str:
        """Deterministic content hash identifying this run."""
        blob = json.dumps(self.payload(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    def describe(self) -> str:
        cfg = self.config
        return (
            f"{cfg.order}/{cfg.br_solver} {cfg.num_nodes[0]}x{cfg.num_nodes[1]} "
            f"fft{cfg.fft_config.index} ranks={self.ranks} steps={self.steps} "
            f"[{self.mode}]"
        )


@dataclass
class CampaignDeck:
    """A named sweep over solver / IC / run parameters."""

    name: str = "default"
    mode: str = "functional"
    steps: int = 10
    ranks: int = 1
    base: dict[str, Any] = field(default_factory=dict)
    ic: dict[str, Any] = field(default_factory=dict)
    grid: dict[str, list[Any]] = field(default_factory=dict)
    zip_axes: dict[str, list[Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ConfigurationError(
                f"deck mode must be one of {_MODES}, got {self.mode!r}"
            )
        for key in list(self.grid) + list(self.zip_axes):
            self._validate_key(key)
        unknown_base = set(self.base) - _CONFIG_FIELDS - {_SCENARIO_KEY}
        if unknown_base:
            raise ConfigurationError(
                f"unknown base config fields {sorted(unknown_base)}; "
                f"SolverConfig fields: {sorted(_CONFIG_FIELDS)} "
                f"or 'scenario'"
            )
        unknown_ic = set(self.ic) - _IC_FIELDS
        if unknown_ic:
            raise ConfigurationError(
                f"unknown ic fields {sorted(unknown_ic)}; "
                f"InitialCondition fields: {sorted(_IC_FIELDS)}"
            )
        for key, values in {**self.grid, **self.zip_axes}.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ConfigurationError(
                    f"axis {key!r} must be a non-empty list, got {values!r}"
                )
        lengths = {len(v) for v in self.zip_axes.values()}
        if len(lengths) > 1:
            raise ConfigurationError(
                f"zip axes must have equal lengths, got "
                f"{ {k: len(v) for k, v in self.zip_axes.items()} }"
            )
        overlap = set(self.grid) & set(self.zip_axes)
        if overlap:
            raise ConfigurationError(
                f"axes cannot be both grid and zip: {sorted(overlap)}"
            )

    @staticmethod
    def _validate_key(key: str) -> None:
        if key in ("ranks", "steps", _SCENARIO_KEY):
            return
        if key.startswith("ic."):
            if key[3:] not in _IC_FIELDS:
                raise ConfigurationError(
                    f"unknown initial-condition axis {key!r}; "
                    f"fields: {sorted(_IC_FIELDS)}"
                )
            return
        if key not in _CONFIG_FIELDS:
            raise ConfigurationError(
                f"unknown deck axis {key!r}; SolverConfig fields: "
                f"{sorted(_CONFIG_FIELDS)}, 'ic.<field>', 'ranks', "
                f"'steps', 'scenario'"
            )

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignDeck":
        data = dict(data)
        if "zip" in data:
            data["zip_axes"] = data.pop("zip")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown deck keys {sorted(unknown)}; allowed: {sorted(known | {'zip'})}"
            )
        return cls(**data)

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "CampaignDeck":
        with open(os.fspath(path), "r", encoding="utf-8") as fh:
            data = json.load(fh)
        deck = cls.from_dict(data)
        if "name" not in data:
            stem = os.path.splitext(os.path.basename(os.fspath(path)))[0]
            deck.name = stem
        return deck

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "mode": self.mode,
            "steps": self.steps,
            "ranks": self.ranks,
            "base": _canonical(self.base),
            "ic": _canonical(self.ic),
            "grid": _canonical(self.grid),
            "zip": _canonical(self.zip_axes),
        }

    # -- expansion ------------------------------------------------------------

    def _points(self) -> Iterator[dict[str, Any]]:
        """Yield override dicts: grid product × zip rows, in stable order."""
        grid_keys = sorted(self.grid)
        grid_values = [self.grid[k] for k in grid_keys]
        zip_keys = sorted(self.zip_axes)
        zip_len = len(next(iter(self.zip_axes.values()))) if self.zip_axes else 1
        for combo in itertools.product(*grid_values) if grid_keys else [()]:
            for row in range(zip_len):
                point = dict(zip(grid_keys, combo))
                for key in zip_keys:
                    point[key] = self.zip_axes[key][row]
                yield point

    def expand(self) -> list[RunSpec]:
        """Materialize every run of the sweep as a frozen :class:`RunSpec`.

        When a point (or ``base``) names a ``scenario``, the pack is
        resolved first and layered *under* the deck's own parameters:
        pack config/ic < deck ``base``/``ic`` < axis point values.  The
        emitted spec carries only resolved parameters — no scenario
        field — so it content-hashes identically to the equivalent
        explicit deck.
        """
        specs = []
        for point in self._points():
            scenario_name = point.pop(_SCENARIO_KEY, self.base.get(_SCENARIO_KEY))
            config_params = {
                k: v for k, v in self.base.items() if k != _SCENARIO_KEY
            }
            ic_params = dict(self.ic)
            ranks, steps = self.ranks, self.steps
            if scenario_name is not None:
                from repro.scenarios import get_scenario

                pack = get_scenario(scenario_name)
                config_params = {**pack.config, **config_params}
                ic_params = {**pack.ic, **ic_params}
            for key, value in point.items():
                if key == "ranks":
                    ranks = int(value)
                elif key == "steps":
                    steps = int(value)
                elif key.startswith("ic."):
                    ic_params[key[3:]] = value
                else:
                    config_params[key] = value
            specs.append(
                RunSpec(
                    config=_build_config(config_params),
                    ic=InitialCondition(**ic_params),
                    ranks=ranks,
                    steps=steps,
                    mode=self.mode,
                    campaign=self.name,
                )
            )
        return specs

    def size(self) -> int:
        zip_len = len(next(iter(self.zip_axes.values()))) if self.zip_axes else 1
        grid_len = 1
        for values in self.grid.values():
            grid_len *= len(values)
        return grid_len * zip_len
